"""Tests for the Decision Maker building blocks (Algorithms 1-3, Table 1)."""

import pytest

from repro.core.assignment import AssignmentError, assign_partitions, makespan
from repro.core.classification import (
    AccessPattern,
    ClassifiedPartition,
    classify_partition,
    classify_partitions,
)
from repro.core.grouping import GroupingError, max_partitions_per_node, nodes_per_group
from repro.core.output import TargetSlot, compute_output, count_restarts, plan_moves
from repro.core.parameters import MeTParameters
from repro.core.profiles import NODE_PROFILES, profile_for
from repro.core.sizing import SizingAlgorithm
from repro.monitoring.collector import PartitionSample


def sample(pid, reads=0.0, writes=0.0, scans=0.0, node="n1"):
    return PartitionSample(
        partition_id=pid, node=node, reads=reads, writes=writes, scans=scans, size_bytes=1e8
    )


class TestProfiles:
    def test_table1_values(self):
        read = NODE_PROFILES["read"].config
        assert read.block_cache_fraction == pytest.approx(0.55)
        assert read.memstore_fraction == pytest.approx(0.10)
        assert read.block_size_bytes == 32 * 1024
        write = NODE_PROFILES["write"].config
        assert write.memstore_fraction == pytest.approx(0.55)
        assert write.block_size_bytes == 64 * 1024
        scan = NODE_PROFILES["scan"].config
        assert scan.block_size_bytes == 128 * 1024
        rw = NODE_PROFILES["read_write"].config
        assert rw.block_cache_fraction == pytest.approx(0.45)

    def test_all_profiles_respect_heap_constraint(self):
        for profile in NODE_PROFILES.values():
            profile.config.validate()

    def test_profile_lookup(self):
        assert profile_for("scan").name == "scan"
        with pytest.raises(KeyError):
            profile_for("nope")


class TestParameters:
    def test_paper_defaults_valid(self):
        params = MeTParameters().validate()
        assert params.decision_period_seconds == pytest.approx(180.0)
        assert params.suboptimal_nodes_threshold == 0.5
        assert params.write_locality_threshold == 0.70
        assert params.read_locality_threshold == 0.90

    @pytest.mark.parametrize(
        "overrides",
        [
            {"monitor_period_seconds": 0},
            {"decision_samples": 0},
            {"smoothing_alpha": 0.0},
            {"overload_threshold": 1.5},
            {"underload_threshold": 0.9},
            {"underload_fraction": 0.0},
            {"suboptimal_nodes_threshold": 0.0},
            {"classification_threshold": 1.0},
            {"min_nodes": 0},
            {"max_nodes": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, overrides):
        from dataclasses import replace

        with pytest.raises(ValueError):
            replace(MeTParameters(), **overrides).validate()


class TestClassification:
    def test_read_partition(self):
        assert classify_partition(reads=90, writes=10, scans=0) is AccessPattern.READ

    def test_write_partition(self):
        assert classify_partition(reads=10, writes=90, scans=0) is AccessPattern.WRITE

    def test_scan_partition(self):
        assert classify_partition(reads=5, writes=5, scans=90) is AccessPattern.SCAN

    def test_mixed_partition(self):
        assert classify_partition(reads=50, writes=50, scans=0) is AccessPattern.READ_WRITE

    def test_idle_partition_defaults_to_read_write(self):
        assert classify_partition(0, 0, 0) is AccessPattern.READ_WRITE

    def test_threshold_is_strict(self):
        # Exactly 60% reads is NOT "more than 60%".
        assert classify_partition(reads=60, writes=40, scans=0) is AccessPattern.READ_WRITE

    def test_paper_workload_mixes(self):
        # Workload C (read only), B (write only), E (scan heavy), A (50/50).
        assert classify_partition(100, 0, 0) is AccessPattern.READ
        assert classify_partition(0, 100, 0) is AccessPattern.WRITE
        assert classify_partition(5, 5, 95) is AccessPattern.SCAN
        assert classify_partition(50, 50, 0) is AccessPattern.READ_WRITE

    def test_classify_partitions_groups(self):
        groups = classify_partitions(
            {
                "r": sample("r", reads=100),
                "w": sample("w", writes=100),
                "s": sample("s", scans=100),
                "m": sample("m", reads=50, writes=50),
            }
        )
        assert {p.pattern for members in groups.values() for p in members} == set(AccessPattern)
        assert len(groups[AccessPattern.READ]) == 1

    def test_classify_partitions_custom_threshold(self):
        groups = classify_partitions({"x": sample("x", reads=55, writes=45)}, threshold=0.50)
        assert AccessPattern.READ in groups


class TestGrouping:
    def _groups(self, counts):
        return {
            pattern: [
                ClassifiedPartition(f"{pattern.value}-{i}", pattern, 100.0, 1e8)
                for i in range(count)
            ]
            for pattern, count in counts.items()
            if count
        }

    def test_proportional_allocation_matches_paper_example(self):
        # Paper Section 3.3: groups of 4/5/4/8 partitions on 5 nodes ->
        # read/write mix gets 2 nodes, the others 1 each.
        groups = self._groups(
            {
                AccessPattern.READ: 4,
                AccessPattern.WRITE: 5,
                AccessPattern.SCAN: 4,
                AccessPattern.READ_WRITE: 8,
            }
        )
        allocation = nodes_per_group(groups, 5)
        assert allocation[AccessPattern.READ_WRITE] == 2
        assert allocation[AccessPattern.READ] == 1
        assert allocation[AccessPattern.WRITE] == 1
        assert allocation[AccessPattern.SCAN] == 1

    def test_allocation_sums_to_total(self):
        groups = self._groups({AccessPattern.READ: 7, AccessPattern.WRITE: 3})
        for total in (2, 3, 5, 8):
            allocation = nodes_per_group(groups, total)
            assert sum(allocation.values()) == total

    def test_every_nonempty_group_gets_a_node(self):
        groups = self._groups(
            {AccessPattern.READ: 20, AccessPattern.WRITE: 1, AccessPattern.SCAN: 1}
        )
        allocation = nodes_per_group(groups, 5)
        assert all(count >= 1 for count in allocation.values())

    def test_fewer_nodes_than_groups_keeps_biggest(self):
        groups = self._groups(
            {AccessPattern.READ: 5, AccessPattern.WRITE: 3, AccessPattern.SCAN: 1}
        )
        allocation = nodes_per_group(groups, 2)
        assert sum(allocation.values()) == 2

    def test_empty_groups_rejected(self):
        with pytest.raises(GroupingError):
            nodes_per_group({}, 3)
        with pytest.raises(GroupingError):
            nodes_per_group(self._groups({AccessPattern.READ: 1}), 0)

    def test_max_partitions_per_node(self):
        assert max_partitions_per_node(8, 2) == 4
        assert max_partitions_per_node(9, 2) == 5
        assert max_partitions_per_node(0, 2) == 1
        with pytest.raises(GroupingError):
            max_partitions_per_node(4, 0)


class TestAssignment:
    def _partitions(self, costs):
        return [
            ClassifiedPartition(f"p{i}", AccessPattern.READ, cost, 1e8)
            for i, cost in enumerate(costs)
        ]

    def test_all_partitions_assigned(self):
        assignment = assign_partitions(self._partitions([5, 4, 3, 2, 1]), ["a", "b"])
        assigned = [p for parts in assignment.values() for p in parts]
        assert sorted(assigned) == [f"p{i}" for i in range(5)]

    def test_lpt_balances_load(self):
        costs = [10, 9, 8, 7, 2, 1]
        partitions = self._partitions(costs)
        assignment = assign_partitions(partitions, ["a", "b"])
        cost_map = {f"p{i}": c for i, c in enumerate(costs)}
        heaviest = makespan(assignment, cost_map)
        assert heaviest <= sum(costs) * 0.65

    def test_hotspots_spread_over_nodes(self):
        # Two very hot partitions must land on different nodes.
        assignment = assign_partitions(self._partitions([100, 99, 1, 1]), ["a", "b"])
        locations = {
            p: node for node, parts in assignment.items() for p in parts
        }
        assert locations["p0"] != locations["p1"]

    def test_partition_cap_respected(self):
        assignment = assign_partitions(self._partitions([1] * 6), ["a", "b", "c"], max_per_node=2)
        assert all(len(parts) <= 2 for parts in assignment.values())

    def test_infeasible_cap_relaxed(self):
        assignment = assign_partitions(self._partitions([1] * 10), ["a", "b"], max_per_node=1)
        assert sum(len(parts) for parts in assignment.values()) == 10

    def test_empty_nodes_rejected(self):
        with pytest.raises(AssignmentError):
            assign_partitions(self._partitions([1]), [])

    def test_deterministic(self):
        partitions = self._partitions([5, 5, 3, 3, 1, 1])
        a = assign_partitions(partitions, ["a", "b"])
        b = assign_partitions(partitions, ["a", "b"])
        assert a == b


class TestSizingAlgorithm:
    def test_first_time_triggers_initial_reconfiguration(self):
        algorithm = SizingAlgorithm()
        decision = algorithm.decide(suboptimal_nodes=0.2, remove=False)
        assert decision.initial_reconfiguration
        assert decision.delta == 0

    def test_first_time_with_many_overloaded_nodes_adds_straightaway(self):
        algorithm = SizingAlgorithm(suboptimal_nodes_threshold=0.5)
        decision = algorithm.decide(suboptimal_nodes=0.8, remove=False)
        assert decision.delta == 1
        assert not decision.initial_reconfiguration

    def test_quadratic_growth(self):
        algorithm = SizingAlgorithm()
        algorithm.decide(0.9, remove=False)
        deltas = [algorithm.decide(0.9, remove=False).delta for _ in range(3)]
        assert deltas == [2, 4, 8]

    def test_linear_removal_resets_growth(self):
        algorithm = SizingAlgorithm()
        algorithm.decide(0.9, remove=False)
        algorithm.decide(0.9, remove=False)
        removal = algorithm.decide(0.1, remove=True)
        assert removal.delta == -1
        # Growth restarts from 1 after a removal.
        assert algorithm.decide(0.9, remove=False).delta == 1

    def test_reset_growth(self):
        algorithm = SizingAlgorithm()
        algorithm.decide(0.9, remove=False)
        algorithm.decide(0.9, remove=False)
        algorithm.reset_growth()
        assert algorithm.decide(0.9, remove=False).delta == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SizingAlgorithm(suboptimal_nodes_threshold=0.0)


class TestOutputComputation:
    def test_first_time_passes_optimal_state_through(self):
        slots = [
            TargetSlot("read", frozenset({"p1", "p2"})),
            TargetSlot("write", frozenset({"p3"})),
        ]
        targets = compute_output(
            current_state={"n1": {"p1", "p3"}, "n2": {"p2"}},
            current_profiles={"n1": "default", "n2": "default"},
            optimal_state=slots,
            first_time=True,
        )
        assert len(targets) == 2
        assert all(t.needs_restart for t in targets)

    def test_matching_prefers_similar_sets(self):
        slots = [
            TargetSlot("read", frozenset({"p1", "p2"})),
            TargetSlot("write", frozenset({"p3", "p4"})),
        ]
        targets = compute_output(
            current_state={"n1": {"p3", "p4"}, "n2": {"p1", "p2"}},
            current_profiles={"n1": "write", "n2": "read"},
            optimal_state=slots,
        )
        by_node = {t.node: t for t in targets}
        assert by_node["n1"].profile == "write"
        assert by_node["n2"].profile == "read"
        assert count_restarts(targets) == 0
        assert plan_moves({"n1": {"p3", "p4"}, "n2": {"p1", "p2"}}, targets) == []

    def test_changed_profile_requires_restart(self):
        slots = [TargetSlot("scan", frozenset({"p1"}))]
        targets = compute_output(
            current_state={"n1": {"p1"}},
            current_profiles={"n1": "read"},
            optimal_state=slots,
        )
        assert targets[0].needs_restart

    def test_new_nodes_receive_leftover_slots(self):
        slots = [
            TargetSlot("read", frozenset({"p1"})),
            TargetSlot("write", frozenset({"p2"})),
        ]
        targets = compute_output(
            current_state={"n1": {"p1", "p2"}},
            current_profiles={"n1": "read", "new": "unprovisioned"},
            optimal_state=slots,
            new_nodes=["new"],
        )
        nodes = {t.node for t in targets}
        assert nodes == {"n1", "new"}

    def test_shrinking_leaves_nodes_unassigned(self):
        slots = [TargetSlot("read", frozenset({"p1", "p2"}))]
        targets = compute_output(
            current_state={"n1": {"p1"}, "n2": {"p2"}},
            current_profiles={"n1": "read", "n2": "read"},
            optimal_state=slots,
        )
        assert len(targets) == 1

    def test_plan_moves_lists_only_changes(self):
        targets = compute_output(
            current_state={"n1": {"p1"}, "n2": {"p2"}},
            current_profiles={"n1": "read", "n2": "read"},
            optimal_state=[
                TargetSlot("read", frozenset({"p1", "p2"})),
                TargetSlot("read", frozenset()),
            ],
        )
        moves = plan_moves({"n1": {"p1"}, "n2": {"p2"}}, targets)
        assert len(moves) == 1
