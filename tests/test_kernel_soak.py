"""Event-vs-fast kernel soak across the full scenario catalog.

The ROADMAP prerequisite for making the event kernel the scenario-runner
default: every catalog scenario, under both golden controllers, must produce
a trace *byte-identical* to the fast kernel's (the kernel tag aside).  The
golden suite compares the default kernel against committed goldens; this
module locks down the stronger cross-kernel property that justified flipping
the default, so a future event-kernel optimisation that is merely "close"
fails here explicitly instead of silently drifting the goldens.

The soak found (and this module regression-tests) one real divergence: a MeT
decision already due but held back by the cooldown fires on the first *tick*
after the cooldown lapses -- not on a monitor sampling tick -- so
``MeT.next_wakeup`` must be bounded by the cooldown-expiry instant or the
fast-forwarding harness skips the firing tick and the decision lands up to a
monitor period late (observed on cascading_failure, tenant_churn and
tpcc_steady before the fix).
"""

import pytest

from repro.core.framework import MeT
from repro.core.parameters import MeTParameters
from repro.scenarios import CANNED_SCENARIOS, scenario_trace, trace_to_json
from repro.scenarios.trace import GOLDEN_CONTROLLERS

COMBOS = [
    (scenario, controller)
    for scenario in sorted(CANNED_SCENARIOS)
    for controller in GOLDEN_CONTROLLERS
]


class TestEventFastSoak:
    @pytest.mark.parametrize("scenario,controller", COMBOS)
    def test_event_trace_is_byte_identical_to_fast(self, scenario, controller):
        spec = CANNED_SCENARIOS[scenario]
        fast = scenario_trace(spec, controller, kernel="fast")
        event = scenario_trace(spec, controller, kernel="event")
        assert fast.pop("kernel") == "fast"
        assert event.pop("kernel") == "event"
        assert trace_to_json(fast) == trace_to_json(event), (
            f"{scenario}/{controller}: event kernel diverged from fast; the "
            "event kernel may only reuse/fast-forward when the result is "
            "bit-exact (see PERFORMANCE.md)"
        )


class _IdleBackend:
    """Minimal backend: enough for a MeT that never has to decide."""

    def node_names(self):
        return ["rs-1"]

    def online_node_names(self):
        return ["rs-1"]

    def node_system_metrics(self, name):
        return {"cpu": 0.1, "io_wait": 0.1, "memory": 0.1}

    def node_locality(self, name):
        return 1.0

    def node_profile(self, name):
        return "default"

    def partition_stats(self):
        return {}


class TestMeTCooldownWakeup:
    """The next_wakeup bug the soak surfaced, pinned as a unit test."""

    def _met(self) -> MeT:
        parameters = MeTParameters(
            monitor_period_seconds=15.0, decision_samples=4, cooldown_seconds=90.0
        )
        return MeT(_IdleBackend(), parameters)

    def test_pending_decision_bounds_wakeup_by_cooldown_expiry(self):
        met = self._met()
        met.monitor.collector._last_sample_time = 300.0
        met.monitor.collector._samples_since_decision = 4  # decision latched
        met._last_action_finished = 250.0  # cooldown runs until 340.0
        # Next sample would be due at ~315, but the latched decision fires
        # earlier than any sample on the first step at/after 340?  No:
        # 315 < 340, so the *monitor* wakeup stays binding here ...
        assert met.next_wakeup(310.0) == pytest.approx(315.0, abs=1e-6)
        # ... but once the next sampling instant lies beyond the cooldown
        # expiry, the expiry instant must bound the wakeup: step(t) fires
        # the decision at the first t >= 340, well before the sample at 405.
        met.monitor.collector._last_sample_time = 390.0
        met._last_action_finished = 250.0
        assert met.next_wakeup(330.0) == pytest.approx(340.0, abs=1e-6)

    def test_pending_decision_with_no_prior_action_wakes_immediately(self):
        met = self._met()
        met.monitor.collector._last_sample_time = 300.0
        met.monitor.collector._samples_since_decision = 4
        assert met.next_wakeup(301.0) == 301.0

    def test_no_pending_decision_keeps_monitor_cadence(self):
        met = self._met()
        met.monitor.collector._last_sample_time = 300.0
        met.monitor.collector._samples_since_decision = 2
        met._last_action_finished = 299.0
        assert met.next_wakeup(301.0) == pytest.approx(315.0, abs=1e-6)
