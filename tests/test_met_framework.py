"""Integration tests: the full MeT loop, its backends, and the baselines."""

import pytest

from repro.core.backends import HBaseBackend, SimulatorBackend
from repro.core.decision import DecisionMaker
from repro.core.framework import MeT
from repro.core.interfaces import ClusterBackend
from repro.core.parameters import MeTParameters
from repro.core.profiles import NODE_PROFILES
from repro.elasticity.daemon import HBaseBalancerDaemon
from repro.elasticity.strategies import (
    PartitionWorkload,
    manual_heterogeneous,
    manual_homogeneous,
    random_homogeneous,
)
from repro.elasticity.autoscaler import AutoscalerAction
from repro.elasticity.tiramola import Tiramola, TiramolaPolicy
from repro.experiments.harness import apply_placement
from repro.hbase.cluster import MiniHBaseCluster
from repro.monitoring.collector import ClusterSnapshot, NodeSample, PartitionSample
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.ycsb.scenario import build_paper_scenario


def make_snapshot(loads, partitions=None, profiles=None):
    nodes = {
        name: NodeSample(
            name=name,
            cpu=load,
            io_wait=load * 0.5,
            memory=0.5,
            locality=1.0,
            profile=(profiles or {}).get(name, "default"),
        )
        for name, load in loads.items()
    }
    return ClusterSnapshot(timestamp=0.0, nodes=nodes, partitions=partitions or {})


class TestDecisionMaker:
    def test_healthy_cluster_yields_no_plan(self):
        maker = DecisionMaker()
        snapshot = make_snapshot({"n1": 0.5, "n2": 0.6})
        assert maker.decide(snapshot) is None

    def test_overloaded_cluster_yields_plan(self):
        maker = DecisionMaker()
        partitions = {
            "p1": PartitionSample("p1", "n1", reads=1000, writes=0, scans=0, size_bytes=1e8),
            "p2": PartitionSample("p2", "n2", reads=0, writes=1000, scans=0, size_bytes=1e8),
        }
        snapshot = make_snapshot({"n1": 0.95, "n2": 0.4}, partitions)
        plan = maker.decide(snapshot)
        assert plan is not None
        assert plan.initial
        profiles = {target.profile for target in plan.targets}
        assert profiles <= set(NODE_PROFILES)

    def test_underloaded_cluster_removes_a_node(self):
        parameters = MeTParameters(min_nodes=1)
        maker = DecisionMaker(parameters)
        partitions = {
            "p1": PartitionSample("p1", "n1", reads=100, writes=0, scans=0, size_bytes=1e8),
            "p2": PartitionSample("p2", "n2", reads=100, writes=0, scans=0, size_bytes=1e8),
            "p3": PartitionSample("p3", "n3", reads=100, writes=0, scans=0, size_bytes=1e8),
        }
        # First decision consumes the InitialReconfiguration.
        maker.decide(make_snapshot({"n1": 0.1, "n2": 0.1, "n3": 0.1}, partitions))
        plan = maker.decide(make_snapshot({"n1": 0.1, "n2": 0.1, "n3": 0.1}, partitions))
        assert plan is not None
        assert len(plan.nodes_to_remove) == 1

    def test_max_nodes_clamps_additions(self):
        parameters = MeTParameters(max_nodes=2)
        maker = DecisionMaker(parameters)
        partitions = {
            "p1": PartitionSample("p1", "n1", reads=1000, writes=0, scans=0, size_bytes=1e8),
        }
        maker.decide(make_snapshot({"n1": 0.99, "n2": 0.99}, partitions))
        plan = maker.decide(make_snapshot({"n1": 0.99, "n2": 0.99}, partitions))
        assert plan is None or not plan.new_nodes

    def test_distribution_covers_every_partition(self):
        maker = DecisionMaker()
        partitions = {
            f"p{i}": PartitionSample(
                f"p{i}", "n1", reads=100 * i, writes=50, scans=0, size_bytes=1e8
            )
            for i in range(8)
        }
        slots = maker.distribution(
            ClusterSnapshot(timestamp=0.0, nodes={}, partitions=partitions), cluster_size=3
        )
        covered = {p for slot in slots for p in slot.partitions}
        assert covered == set(partitions)


class TestSimulatorBackendContract:
    def test_backend_satisfies_protocol(self, simulator):
        backend = SimulatorBackend(simulator)
        assert isinstance(backend, ClusterBackend)

    def test_add_and_remove_node(self, simulator):
        backend = SimulatorBackend(simulator)
        name = backend.add_node(NODE_PROFILES["read"].config, "read")
        assert name in simulator.nodes
        assert not backend.node_is_online(name)
        simulator.run(simulator.boot_seconds + 10)
        assert backend.node_is_online(name)
        assert backend.node_profile(name) == "read"
        backend.remove_node(name)
        assert name not in simulator.nodes

    def test_reconfigure_and_compact(self, simulator):
        backend = SimulatorBackend(simulator)
        nodes = backend.online_node_names()
        simulator.add_region("r1", "w", 1e8, node=nodes[0])
        backend.move_partition("r1", nodes[1])
        assert backend.node_locality(nodes[1]) < 0.5
        backend.major_compact(nodes[1])
        simulator.run(60.0)
        assert backend.node_locality(nodes[1]) == 1.0
        drained = backend.reconfigure_node(nodes[1], NODE_PROFILES["scan"].config, "scan")
        assert "r1" in drained


class TestMeTEndToEnd:
    def _prepared_simulator(self, seed=1):
        simulator = ClusterSimulator()
        nodes = [simulator.add_node() for _ in range(5)]
        scenario = build_paper_scenario(simulator)
        plan = random_homogeneous(scenario.expected_partition_workloads(), nodes, seed=seed)
        apply_placement(simulator, plan)
        return simulator

    def test_met_reconfigures_and_improves_throughput(self):
        simulator = self._prepared_simulator()
        backend = SimulatorBackend(simulator)
        met = MeT(backend, MeTParameters(min_nodes=5, max_nodes=5, allow_remove=False))
        simulator.run(120.0)
        baseline = simulator.cluster_throughput()
        for _ in range(12 * 18):  # 18 minutes of 5-second ticks
            simulator.tick()
            met.step(simulator.clock.now)
        assert met.status.plans_applied >= 1
        assert met.actuator.report.nodes_reconfigured >= 1
        profiles = {node.profile_name for node in simulator.nodes.values()}
        assert profiles & set(NODE_PROFILES)
        assert simulator.cluster_throughput() > baseline

    def test_met_respects_cooldown_and_noop_plans(self):
        simulator = self._prepared_simulator(seed=2)
        backend = SimulatorBackend(simulator)
        met = MeT(backend, MeTParameters(min_nodes=5, max_nodes=5, allow_remove=False))
        for _ in range(12 * 25):
            simulator.tick()
            met.step(simulator.clock.now)
        # After convergence MeT keeps deciding but stops churning the cluster.
        assert met.status.decisions >= met.status.plans_applied

    def test_disabled_controller_does_nothing(self):
        simulator = self._prepared_simulator(seed=3)
        backend = SimulatorBackend(simulator)
        met = MeT(backend, MeTParameters(), enabled=False)
        for _ in range(12 * 10):
            simulator.tick()
            met.step(simulator.clock.now)
        assert met.status.plans_applied == 0
        assert all(node.profile_name == "default" for node in simulator.nodes.values())


class TestHBaseBackend:
    def test_backend_over_functional_cluster(self):
        cluster = MiniHBaseCluster(initial_servers=2)
        cluster.create_table("t", split_keys=["m"])
        client = cluster.client()
        for index in range(20):
            client.put("t", f"k{index:02d}", "cf:v", b"x")
            client.get("t", f"k{index:02d}")
        backend = HBaseBackend(cluster)
        assert isinstance(backend, ClusterBackend)
        assert len(backend.node_names()) == 2
        stats = backend.partition_stats()
        assert stats
        metrics = backend.node_system_metrics(backend.node_names()[0])
        assert set(metrics) == {"cpu", "io_wait", "memory"}
        name = backend.add_node(NODE_PROFILES["read"].config, "read")
        assert backend.node_is_online(name)
        region_id = next(iter(stats))
        backend.move_partition(region_id, name)
        backend.major_compact(name)
        backend.remove_node(name)
        assert name not in backend.node_names()


class TestTiramola:
    def _overloaded_backend(self):
        simulator = ClusterSimulator()
        nodes = [simulator.add_node() for _ in range(2)]
        scenario = build_paper_scenario(simulator)
        plan = manual_homogeneous(scenario.expected_partition_workloads(), nodes)
        apply_placement(simulator, plan)
        return simulator, SimulatorBackend(simulator)

    def test_adds_node_under_load(self):
        simulator, backend = self._overloaded_backend()
        policy = TiramolaPolicy(decision_samples=2, cooldown_seconds=0.0, min_nodes=2)
        tiramola = Tiramola(backend, policy)
        for _ in range(12 * 6):
            simulator.tick()
            tiramola.step(simulator.clock.now)
        assert len(simulator.nodes) > 2
        assert tiramola.log.events

    def test_removes_only_when_all_nodes_idle(self):
        simulator = ClusterSimulator()
        for _ in range(3):
            simulator.add_node()
        backend = SimulatorBackend(simulator)
        policy = TiramolaPolicy(decision_samples=2, cooldown_seconds=0.0, min_nodes=1)
        tiramola = Tiramola(backend, policy)
        for _ in range(12 * 5):
            simulator.tick()
            tiramola.step(simulator.clock.now)
        # An idle cluster shrinks (every node below the low threshold).
        assert len(simulator.nodes) < 3


class ScriptedBackend:
    """Minimal metrics backend with scripted per-node loads.

    Lets the Tiramola regression tests control exactly what each sample
    observes, including nodes vanishing mid-decision-window.
    """

    def __init__(self, loads: dict[str, float]) -> None:
        self.loads = dict(loads)
        self.added: list[str] = []
        self.removed: list[str] = []

    def online_node_names(self):
        return sorted(self.loads)

    def node_system_metrics(self, name):
        return {"cpu": self.loads[name], "io_wait": 0.0, "memory": 0.5}

    def add_node(self, config, profile_name):
        name = f"auto-{len(self.added) + 1}"
        self.added.append(name)
        self.loads[name] = 0.0
        return name

    def remove_node(self, name):
        self.removed.append(name)
        self.loads.pop(name)


class TestTiramolaFaultWindows:
    """Regression tests for the fault-window sampling bugs (both failed on
    the pre-fix controller)."""

    def test_crashed_node_samples_do_not_suppress_an_add(self):
        """Two dead idle nodes used to dilute the overload quorum below the
        add threshold; offline nodes must be dropped at decision time."""
        backend = ScriptedBackend({"h1": 0.95, "d1": 0.05, "d2": 0.05})
        policy = TiramolaPolicy(
            decision_samples=4, monitor_period_seconds=30.0, cooldown_seconds=0.0
        )
        tiramola = Tiramola(backend, policy)
        tiramola.step(30.0)
        tiramola.step(60.0)
        # Both idle nodes crash mid-window; their samples linger.
        del backend.loads["d1"]
        del backend.loads["d2"]
        tiramola.step(90.0)
        tiramola.step(120.0)
        # The surviving node is overloaded: 1/1 >= quorum. Pre-fix the two
        # ghosts made it 1/3 < 0.5 and the needed ADD never happened.
        assert backend.added, "crashed nodes suppressed a needed ADD"

    def test_crashed_nodes_do_not_licence_removing_the_last_healthy_node(self):
        """`online` used to count dead nodes, so an idle 1-node cluster
        looked like 3 nodes and the min_nodes floor did not hold.  Driven
        through the real simulator backend via fail_node."""
        simulator = ClusterSimulator()
        names = [simulator.add_node() for _ in range(3)]
        backend = SimulatorBackend(simulator)
        policy = TiramolaPolicy(
            decision_samples=4, monitor_period_seconds=30.0,
            cooldown_seconds=0.0, min_nodes=1,
        )
        tiramola = Tiramola(backend, policy)
        tiramola.step(30.0)
        tiramola.step(60.0)
        simulator.fail_node(names[0])
        simulator.fail_node(names[1])
        tiramola.step(90.0)
        tiramola.step(120.0)
        # Pre-fix: online looked like 3 > min_nodes and every load was idle,
        # so the one surviving node was removed, leaving an empty cluster.
        assert len(simulator.nodes) == 1
        assert tiramola.log.count(AutoscalerAction.REMOVE_NODE) == 0

    def test_cooldown_does_not_inflate_the_decision_window(self):
        """Samples taken during cooldown used to accumulate unboundedly, so
        the first post-cooldown decision averaged the whole cooldown
        (mostly pre-settle load) and missed the scale-in."""
        backend = ScriptedBackend({"n1": 0.95, "n2": 0.95})
        policy = TiramolaPolicy(
            decision_samples=2, monitor_period_seconds=30.0,
            cooldown_seconds=300.0, min_nodes=1,
        )
        tiramola = Tiramola(backend, policy)
        tiramola.step(30.0)
        tiramola.step(60.0)  # decision: overloaded 2/2 -> ADD, cooldown starts
        assert backend.added
        # Pre-settle load persists deep into the cooldown...
        for t in (90.0, 120.0, 150.0, 180.0, 210.0, 240.0, 270.0):
            tiramola.step(t)
            for values in tiramola._samples.values():
                assert len(values) <= policy.decision_samples, (
                    "cooldown grew the window past decision_samples"
                )
        # ...then the add settles things and the cluster goes idle.
        for name in backend.loads:
            backend.loads[name] = 0.05
        tiramola.step(300.0)
        tiramola.step(330.0)
        tiramola.step(360.0)  # cooldown over; window = freshest samples only
        assert backend.removed, (
            "stale pre-settle samples suppressed the post-cooldown scale-in"
        )


class TestActuatorCrashTolerance:
    """A node crashing mid-plan must not wedge or abort the actuator."""

    def _met_with_plan(self):
        simulator = ClusterSimulator()
        nodes = [simulator.add_node() for _ in range(3)]
        scenario = build_paper_scenario(simulator)
        plan = manual_homogeneous(scenario.expected_partition_workloads(), nodes)
        apply_placement(simulator, plan)
        return simulator, SimulatorBackend(simulator), nodes

    def test_restart_target_crashing_is_skipped(self):
        from repro.core.actuator import Actuator, ActuatorPhase
        from repro.core.decision import ReconfigurationPlan
        from repro.core.output import NodeTarget

        simulator, backend, nodes = self._met_with_plan()
        actuator = Actuator(backend)
        plan = ReconfigurationPlan(
            timestamp=0.0,
            initial=False,
            targets=[
                NodeTarget(node=nodes[0], profile="read", needs_restart=True),
                NodeTarget(node=nodes[1], profile="write", needs_restart=True),
            ],
        )
        assert actuator.submit(plan, now=0.0)
        # The first target crashes before the actuator reaches it.
        simulator.fail_node(nodes[0])
        for _ in range(40):
            simulator.tick()
            actuator.step(simulator.clock.now)
            if actuator.phase is ActuatorPhase.IDLE:
                break
        assert actuator.phase is ActuatorPhase.IDLE, "actuator wedged on a ghost"
        # Only the surviving target was restarted.
        assert actuator.report.nodes_reconfigured == 1

    def test_provisioned_node_crashing_while_booting_is_abandoned(self):
        from repro.core.actuator import Actuator, ActuatorPhase
        from repro.core.decision import ReconfigurationPlan
        from repro.core.output import NodeTarget

        simulator, backend, _ = self._met_with_plan()
        actuator = Actuator(backend)
        placeholder = "<new-node-1>"
        plan = ReconfigurationPlan(
            timestamp=0.0,
            initial=False,
            targets=[NodeTarget(node=placeholder, profile="read")],
            new_nodes=[placeholder],
        )
        assert actuator.submit(plan, now=0.0)
        assert actuator.phase is ActuatorPhase.PROVISIONING
        # The freshly provisioned VM dies while still booting.
        real_name = next(iter(actuator._inflight.placeholder_map.values()))
        simulator.fail_node(real_name)
        for _ in range(40):
            simulator.tick()
            actuator.step(simulator.clock.now)
            if actuator.phase is ActuatorPhase.IDLE:
                break
        assert actuator.phase is ActuatorPhase.IDLE, (
            "actuator waited forever for a node that crashed while booting"
        )

    def test_node_crashing_during_its_restart_is_abandoned(self):
        from repro.core.actuator import Actuator, ActuatorPhase
        from repro.core.decision import ReconfigurationPlan
        from repro.core.output import NodeTarget

        simulator, backend, nodes = self._met_with_plan()
        actuator = Actuator(backend)
        plan = ReconfigurationPlan(
            timestamp=0.0,
            initial=False,
            targets=[NodeTarget(node=nodes[0], profile="read", needs_restart=True)],
        )
        assert actuator.submit(plan, now=0.0)
        actuator.step(0.0)  # issues the restart
        assert actuator.phase is ActuatorPhase.WAITING_RESTART
        simulator.fail_node(nodes[0])  # dies while restarting
        for _ in range(40):
            simulator.tick()
            actuator.step(simulator.clock.now)
            if actuator.phase is ActuatorPhase.IDLE:
                break
        assert actuator.phase is ActuatorPhase.IDLE, (
            "actuator waited forever for a node that will never come back"
        )


class TestStrategies:
    def _expected(self):
        simulator = ClusterSimulator()
        for _ in range(5):
            simulator.add_node()
        scenario = build_paper_scenario(simulator)
        return scenario.expected_partition_workloads(), list(simulator.nodes)

    def test_plans_cover_all_partitions(self):
        expected, nodes = self._expected()
        ids = [p.partition_id for p in expected]
        for plan in (
            random_homogeneous(expected, nodes, seed=0),
            manual_homogeneous(expected, nodes),
            manual_heterogeneous(expected, nodes),
        ):
            plan.validate(ids, nodes)
            assert set(plan.node_configs) == set(nodes)

    def test_heterogeneous_plan_uses_table1_profiles(self):
        expected, nodes = self._expected()
        plan = manual_heterogeneous(expected, nodes)
        assert set(plan.node_profiles.values()) <= set(NODE_PROFILES) | {"default"}
        assert "scan" in plan.node_profiles.values()
        assert "write" in plan.node_profiles.values()

    def test_homogeneous_plan_disperses_workload_partitions(self):
        expected, nodes = self._expected()
        plan = manual_homogeneous(expected, nodes)
        c_nodes = {plan.assignment[f"C:part-{i}"] for i in range(4)}
        assert len(c_nodes) >= 3

    def test_partition_workload_classification(self):
        read_heavy = PartitionWorkload("p", reads=90, writes=10)
        assert read_heavy.classified().pattern.value == "read"
        assert read_heavy.total_requests == 100

    def test_random_plans_differ_across_seeds(self):
        expected, nodes = self._expected()
        a = random_homogeneous(expected, nodes, seed=0).assignment
        b = random_homogeneous(expected, nodes, seed=1).assignment
        assert a != b


class TestBalancerDaemon:
    def test_daemon_evens_region_counts(self, simulator):
        nodes = list(simulator.nodes)
        for index in range(6):
            simulator.add_region(f"r{index}", "w", 1e8, node=nodes[0])
        backend = SimulatorBackend(simulator)
        daemon = HBaseBalancerDaemon(backend, period_seconds=0.0, seed=0)
        moves = daemon.balance()
        assert moves > 0
        counts = [len(simulator.regions_on(node)) for node in nodes]
        assert max(counts) - min(counts) <= 1
