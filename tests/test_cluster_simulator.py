"""Tests for the time-stepped cluster simulator."""

import pytest

from repro.core.profiles import NODE_PROFILES
from repro.simulation.cluster import (
    STATE_BOOTING,
    STATE_RESTARTING,
    ClusterSimulator,
    SimulationError,
)
from repro.simulation.workload import WorkloadBinding


def make_binding(region_ids, threads=20, mix=None, target=None):
    weight = 1.0 / len(region_ids)
    return WorkloadBinding(
        name="tenant",
        threads=threads,
        op_mix=mix or {"read": 0.5, "update": 0.5},
        region_weights={rid: weight for rid in region_ids},
        target_ops_per_second=target,
    )


class TestTopology:
    def test_add_node_generates_names(self, simulator):
        assert len(simulator.nodes) == 3
        assert all(name.startswith("rs-") for name in simulator.nodes)

    def test_add_duplicate_node_rejected(self, simulator):
        name = next(iter(simulator.nodes))
        with pytest.raises(SimulationError):
            simulator.add_node(name=name)

    def test_async_node_boots_after_delay(self):
        sim = ClusterSimulator(boot_seconds=30.0)
        sim.add_node()
        name = sim.add_node(online=False)
        assert not sim.nodes[name].online
        sim.run(35.0)
        assert sim.nodes[name].online

    def test_remove_node_reassigns_regions(self, simulator):
        nodes = list(simulator.nodes)
        simulator.add_region("r1", "w", 1e8, node=nodes[0])
        simulator.remove_node(nodes[0])
        assert simulator.regions["r1"].node in nodes[1:]

    def test_remove_unknown_node_raises(self, simulator):
        with pytest.raises(SimulationError):
            simulator.remove_node("nope")

    def test_add_region_requires_known_node(self, simulator):
        with pytest.raises(SimulationError):
            simulator.add_region("r1", "w", 1e8, node="ghost")

    def test_duplicate_region_rejected(self, simulator):
        node = next(iter(simulator.nodes))
        simulator.add_region("r1", "w", 1e8, node=node)
        with pytest.raises(SimulationError):
            simulator.add_region("r1", "w", 1e8, node=node)

    def test_move_region(self, simulator):
        nodes = list(simulator.nodes)
        simulator.add_region("r1", "w", 1e8, node=nodes[0])
        simulator.move_region("r1", nodes[1])
        assert simulator.regions["r1"].node == nodes[1]
        assert simulator.assignment()["r1"] == nodes[1]


class TestLocality:
    def test_region_starts_local(self, simulator):
        node = next(iter(simulator.nodes))
        region = simulator.add_region("r1", "w", 1e8, node=node)
        assert region.locality == 1.0

    def test_move_breaks_locality(self, simulator):
        nodes = list(simulator.nodes)
        region = simulator.add_region("r1", "w", 1e8, node=nodes[0])
        simulator.move_region("r1", nodes[1])
        assert region.locality < 0.5

    def test_major_compact_restores_locality(self, simulator):
        nodes = list(simulator.nodes)
        region = simulator.add_region("r1", "w", 1e8, node=nodes[0])
        simulator.move_region("r1", nodes[1])
        rewritten = simulator.major_compact(nodes[1])
        assert rewritten == pytest.approx(1e8)
        # Compaction takes simulated time proportional to the data size.
        simulator.run(60.0)
        assert region.locality == 1.0

    def test_node_locality_index_weights_by_size(self, simulator):
        nodes = list(simulator.nodes)
        simulator.add_region("local", "w", 3e8, node=nodes[0])
        remote = simulator.add_region("remote", "w", 1e8, node=nodes[1])
        simulator.move_region("remote", nodes[0])
        index = simulator.node_locality_index(nodes[0])
        assert 0.7 < index < 1.0
        assert remote.locality < 1.0


class TestReconfiguration:
    def test_reconfigure_drains_and_restarts(self, simulator):
        nodes = list(simulator.nodes)
        simulator.add_region("r1", "w", 1e8, node=nodes[0])
        drained = simulator.reconfigure_node(
            nodes[0], NODE_PROFILES["read"].config, profile_name="read"
        )
        assert drained == ["r1"]
        assert simulator.regions["r1"].node != nodes[0]
        assert simulator.nodes[nodes[0]].state == STATE_RESTARTING
        simulator.run(simulator.restart_seconds + 5.0)
        assert simulator.nodes[nodes[0]].online
        assert simulator.nodes[nodes[0]].profile_name == "read"

    def test_restarting_node_serves_nothing(self, simulator):
        nodes = list(simulator.nodes)
        simulator.add_region("r1", "w", 1e8, node=nodes[0])
        simulator.attach_workload(make_binding(["r1"]))
        simulator.reconfigure_node(nodes[0], NODE_PROFILES["read"].config, drain=False)
        simulator.tick()
        assert simulator.nodes[nodes[0]].served_ops == 0.0


class TestWorkloads:
    def test_attach_requires_known_regions(self, simulator):
        with pytest.raises(SimulationError):
            simulator.attach_workload(make_binding(["ghost"]))

    def test_tick_produces_throughput(self, simulator):
        node = next(iter(simulator.nodes))
        simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(make_binding(["r1"]))
        simulator.run(30.0)
        assert simulator.cluster_throughput() > 0
        assert simulator.total_ops > 0

    def test_target_cap_respected(self, simulator):
        node = next(iter(simulator.nodes))
        simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(make_binding(["r1"], target=500.0))
        simulator.run(30.0)
        assert simulator.binding_throughput("tenant") <= 500.0 + 1e-6

    def test_deactivated_workload_stops(self, simulator):
        node = next(iter(simulator.nodes))
        simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(make_binding(["r1"]))
        simulator.run(20.0)
        simulator.set_workload_active("tenant", False)
        simulator.run(20.0)
        # The closed-loop solver damps towards zero; only a negligible
        # residual remains after a few ticks.
        assert simulator.binding_throughput("tenant") < 1.0

    def test_unknown_workload_activation_raises(self, simulator):
        with pytest.raises(SimulationError):
            simulator.set_workload_active("ghost", True)

    def test_region_counters_accumulate(self, simulator):
        node = next(iter(simulator.nodes))
        region = simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(make_binding(["r1"]))
        simulator.run(30.0)
        assert region.reads > 0
        assert region.writes > 0

    def test_inserts_grow_region(self, simulator):
        node = next(iter(simulator.nodes))
        region = simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(
            make_binding(["r1"], mix={"insert": 1.0})
        )
        before = region.size_bytes
        simulator.run(60.0)
        assert region.size_bytes > before

    def test_metrics_recorded_per_node_and_cluster(self, simulator):
        node = next(iter(simulator.nodes))
        simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(make_binding(["r1"]))
        simulator.run(20.0)
        assert simulator.metrics.latest("cluster", "throughput") > 0
        assert simulator.metrics.latest(node, "cpu") >= 0.0
        assert 0.0 <= simulator.metrics.latest(node, "locality") <= 1.0

    def test_detach_workload(self, simulator):
        node = next(iter(simulator.nodes))
        simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(make_binding(["r1"]))
        simulator.detach_workload("tenant")
        assert "tenant" not in simulator.bindings

    def test_detach_workload_clears_reported_throughput(self, simulator):
        node = next(iter(simulator.nodes))
        simulator.add_region("r1", "w", 1e8, node=node)
        simulator.attach_workload(make_binding(["r1"]))
        simulator.run(20.0)
        assert simulator.cluster_throughput() > 0
        simulator.detach_workload("tenant")
        assert simulator.binding_throughput("tenant") == 0.0
        simulator.tick()
        assert simulator.cluster_throughput() == 0.0


class TestCapacityBehaviour:
    def test_more_nodes_more_throughput_when_overloaded(self):
        def total_for(node_count):
            sim = ClusterSimulator()
            nodes = [sim.add_node() for _ in range(node_count)]
            for index in range(8):
                sim.add_region(f"r{index}", "w", 5e8, node=nodes[index % node_count])
            sim.attach_workload(
                WorkloadBinding(
                    name="t",
                    threads=200,
                    op_mix={"read": 0.6, "update": 0.4},
                    region_weights={f"r{i}": 1 / 8 for i in range(8)},
                )
            )
            sim.run(60.0)
            return sim.cluster_throughput()

        assert total_for(4) > total_for(2) * 1.3

    def test_overloaded_node_throttles_tenants(self):
        sim = ClusterSimulator()
        node = sim.add_node()
        sim.add_region("r1", "w", 5e8, node=node)
        sim.attach_workload(
            WorkloadBinding(
                name="t",
                threads=500,
                op_mix={"read": 1.0},
                region_weights={"r1": 1.0},
            )
        )
        sim.run(60.0)
        # Achieved throughput is bounded by the single node's capacity, far
        # below what 500 unconstrained threads could push.
        assert sim.cluster_throughput() < 20_000
        assert sim.nodes[node].cpu_utilization > 0.5
