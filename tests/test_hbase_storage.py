"""Tests for the mini-HBase storage layer: cells, store files and regions."""

import pytest

from repro.hbase.config import ConfigError, DEFAULT_HOMOGENEOUS, RegionServerConfig
from repro.hbase.region import Region
from repro.hbase.storefile import StoreFile
from repro.hbase.table import Cell, HTableDescriptor


def make_region(**kwargs) -> Region:
    table = HTableDescriptor(name="t", column_families=("cf",))
    return Region(table, **kwargs)


def null_reader(*_args) -> None:
    return None


class TestRegionServerConfig:
    def test_default_is_valid(self):
        RegionServerConfig().validate()
        DEFAULT_HOMOGENEOUS.validate()

    def test_rejects_heap_share_over_65_percent(self):
        with pytest.raises(ConfigError):
            RegionServerConfig(block_cache_fraction=0.5, memstore_fraction=0.3).validate()

    def test_rejects_bad_fractions(self):
        with pytest.raises(ConfigError):
            RegionServerConfig(block_cache_fraction=0.0).validate()
        with pytest.raises(ConfigError):
            RegionServerConfig(memstore_fraction=1.2).validate()

    def test_rejects_bad_block_size_and_handlers(self):
        with pytest.raises(ConfigError):
            RegionServerConfig(block_size_bytes=0).validate()
        with pytest.raises(ConfigError):
            RegionServerConfig(handler_count=0).validate()

    def test_absolute_sizes(self):
        config = RegionServerConfig(block_cache_fraction=0.5, memstore_fraction=0.1)
        assert config.block_cache_bytes(1000) == 500
        assert config.memstore_bytes(1000) == 100

    def test_with_overrides_validates(self):
        config = RegionServerConfig()
        bigger = config.with_overrides(block_cache_fraction=0.25)
        assert bigger.block_cache_fraction == 0.25
        with pytest.raises(ConfigError):
            config.with_overrides(block_cache_fraction=0.65)


class TestTableAndCells:
    def test_cell_family_and_qualifier(self):
        cell = Cell(row="r", column="cf:name", timestamp=1, value=b"x")
        assert cell.family == "cf"
        assert cell.qualifier == "name"
        assert cell.size_bytes > 0

    def test_table_requires_name_and_family(self):
        with pytest.raises(ValueError):
            HTableDescriptor(name="")
        with pytest.raises(ValueError):
            HTableDescriptor(name="t", column_families=())

    def test_validate_column_rejects_unknown_family(self):
        table = HTableDescriptor(name="t", column_families=("cf",))
        table.validate_column("cf:x")
        with pytest.raises(ValueError):
            table.validate_column("other:x")


class TestStoreFile:
    def _cells(self, rows):
        return [Cell(row=row, column="cf:v", timestamp=1, value=b"x" * 50) for row in rows]

    def test_rows_sorted_and_blocks_built(self):
        store = StoreFile("/f", self._cells(["c", "a", "b"]), block_size_bytes=80)
        assert store.row_count == 3
        assert [b.first_row for b in store.blocks] == sorted(
            b.first_row for b in store.blocks
        )
        assert store.size_bytes > 0

    def test_block_for_row_finds_covering_block(self):
        store = StoreFile("/f", self._cells(list("abcdef")), block_size_bytes=120)
        block = store.block_for_row("d")
        assert block is not None
        assert "d" in block.rows

    def test_get_missing_row_returns_empty(self):
        store = StoreFile("/f", self._cells(["a"]), block_size_bytes=120)
        assert store.get("zzz") == {}

    def test_rows_in_range(self):
        store = StoreFile("/f", self._cells(list("abcdef")), block_size_bytes=120)
        assert store.rows_in_range("b", "e") == ["b", "c", "d"]
        assert store.rows_in_range("", None) == list("abcdef")

    def test_newest_version_wins(self):
        cells = [
            Cell(row="a", column="cf:v", timestamp=1, value=b"old"),
            Cell(row="a", column="cf:v", timestamp=2, value=b"new"),
        ]
        store = StoreFile("/f", cells, block_size_bytes=1024)
        assert store.get("a")["cf:v"].value == b"new"

    def test_rejects_nonpositive_block_size(self):
        with pytest.raises(ValueError):
            StoreFile("/f", [], block_size_bytes=0)

    def test_empty_file(self):
        store = StoreFile("/f", [], block_size_bytes=64)
        assert store.block_for_row("a") is None
        assert store.size_bytes == 0


class TestRegion:
    def test_contains_respects_key_range(self):
        region = make_region(start_key="b", end_key="m")
        assert region.contains("b")
        assert region.contains("f")
        assert not region.contains("a")
        assert not region.contains("m")

    def test_put_and_read_row(self):
        region = make_region()
        region.put("row1", "cf:a", b"1")
        region.put("row1", "cf:b", b"2")
        values = region.read_row("row1", null_reader)
        assert values == {"cf:a": b"1", "cf:b": b"2"}
        assert region.counters.writes == 2

    def test_put_rejects_unknown_family(self):
        region = make_region()
        with pytest.raises(ValueError):
            region.put("row1", "bad:a", b"1")

    def test_delete_column_and_row(self):
        region = make_region()
        region.put("row1", "cf:a", b"1")
        region.put("row1", "cf:b", b"2")
        region.delete("row1", "cf:a")
        assert region.read_row("row1", null_reader) == {"cf:b": b"2"}
        region.delete("row1")
        assert region.read_row("row1", null_reader) == {}

    def test_flush_moves_data_to_store_file(self):
        region = make_region()
        region.put("row1", "cf:a", b"1")
        store = region.flush("/f1", block_size_bytes=1024)
        assert store is not None
        assert region.memstore.size_bytes == 0
        assert region.read_row("row1", null_reader) == {"cf:a": b"1"}

    def test_flush_empty_returns_none(self):
        assert make_region().flush("/f", 1024) is None

    def test_memstore_value_overrides_store_file(self):
        region = make_region()
        region.put("row1", "cf:a", b"old")
        region.flush("/f1", 1024)
        region.put("row1", "cf:a", b"new")
        assert region.read_row("row1", null_reader)["cf:a"] == b"new"

    def test_compact_merges_and_drops_tombstones(self):
        region = make_region()
        region.put("row1", "cf:a", b"1")
        region.flush("/f1", 1024)
        region.put("row2", "cf:a", b"2")
        region.flush("/f2", 1024)
        region.delete("row1")
        region.flush("/f3", 1024)
        merged = region.compact("/compacted", 1024)
        assert merged is not None
        assert len(region.store_files) == 1
        assert region.read_row("row1", null_reader) == {}
        assert region.read_row("row2", null_reader) == {"cf:a": b"2"}

    def test_scan_rows_clips_to_region_range(self):
        region = make_region(start_key="b", end_key="m")
        for row in ("b", "c", "d"):
            region.put(row, "cf:a", b"1")
        results = region.scan_rows("a", None, limit=10, block_reader=null_reader)
        assert [row for row, _ in results] == ["b", "c", "d"]

    def test_scan_respects_limit(self):
        region = make_region()
        for index in range(10):
            region.put(f"row{index}", "cf:a", b"1")
        results = region.scan_rows("", None, limit=3, block_reader=null_reader)
        assert len(results) == 3

    def test_midpoint_key(self):
        region = make_region()
        for index in range(10):
            region.put(f"row{index:02d}", "cf:a", b"1")
        midpoint = region.midpoint_key()
        assert midpoint is not None
        assert region.contains(midpoint)

    def test_size_tracks_memstore_and_files(self):
        region = make_region()
        region.put("row1", "cf:a", b"x" * 100)
        in_memory = region.size_bytes
        region.flush("/f1", 1024)
        assert region.size_bytes > 0
        assert region.memstore.size_bytes == 0
        assert in_memory > 0

    def test_counters_snapshot_and_reset(self):
        region = make_region()
        region.put("row1", "cf:a", b"1")
        region.counters.reads += 2
        snapshot = region.counters.snapshot()
        assert snapshot == {"reads": 2, "writes": 1, "scans": 0}
        region.counters.reset()
        assert region.counters.total == 0
