"""Tests for the YCSB and TPC-C workload generators."""

import pytest

from repro.hbase.cluster import MiniHBaseCluster
from repro.hbase.config import TPCC_HOMOGENEOUS
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.tenant import TenantWorkload, as_tenant
from repro.workloads.tpcc.driver import (
    TPCCDriver,
    build_tpcc_scenario,
    ops_rate_from_tpmc,
    simulator_binding,
    tpmc_from_ops,
    tpmc_from_ops_rate,
)
from repro.workloads.tpcc.loader import TPCCLoader
from repro.workloads.tpcc.schema import TPCC_TABLES, TPCCConfig, warehouse_key
from repro.workloads.tpcc.tenant import TPCCTenant
from repro.workloads.ycsb.tenant import YCSBTenant
from repro.workloads.tpcc.transactions import (
    TRANSACTION_MIX,
    aggregate_operation_mix,
    operations_per_transaction,
    read_only_fraction,
)
from repro.workloads.ycsb.client import YCSBClient, format_key
from repro.workloads.ycsb.distributions import (
    HotspotChooser,
    LatestChooser,
    UniformChooser,
    ZipfianChooser,
    partition_request_shares,
)
from repro.workloads.ycsb.scenario import build_paper_scenario
from repro.workloads.ycsb.workloads import (
    CORE_WORKLOADS,
    YCSBWorkload,
    hotspot_partition_weights,
    partition_specs,
)


class TestDistributions:
    @pytest.mark.parametrize(
        "chooser_cls", [UniformChooser, HotspotChooser, ZipfianChooser, LatestChooser]
    )
    def test_indices_within_bounds(self, chooser_cls):
        chooser = chooser_cls(1000, seed=1)
        for _ in range(500):
            assert 0 <= chooser.next_index() < 1000

    def test_hotspot_concentrates_requests(self):
        chooser = HotspotChooser(1000, hot_set_fraction=0.4, hot_operation_fraction=0.5, seed=1)
        hot = sum(1 for _ in range(4000) if chooser.next_index() < 400)
        assert 0.45 <= hot / 4000 <= 0.60  # ~50% of requests hit the hot set

    def test_zipfian_skews_to_low_indices(self):
        chooser = ZipfianChooser(1000, seed=1)
        low = sum(1 for _ in range(2000) if chooser.next_index() < 100)
        assert low / 2000 > 0.5

    def test_latest_skews_to_recent(self):
        chooser = LatestChooser(1000, seed=1)
        recent = sum(1 for _ in range(2000) if chooser.next_index() >= 900)
        assert recent / 2000 > 0.5

    def test_extend_grows_keyspace(self):
        chooser = UniformChooser(10, seed=1)
        chooser.extend(100)
        assert chooser.record_count == 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniformChooser(0)
        with pytest.raises(ValueError):
            HotspotChooser(10, hot_set_fraction=0.0)
        with pytest.raises(ValueError):
            ZipfianChooser(10, theta=1.5)

    def test_partition_request_shares_sum_to_one(self):
        shares = partition_request_shares(
            lambda n, seed: HotspotChooser(n, seed=seed), 1000, 4
        )
        assert sum(shares) == pytest.approx(1.0)
        assert shares[0] > shares[-1]


class TestYCSBWorkloads:
    def test_six_paper_workloads_defined(self):
        assert set(CORE_WORKLOADS) == set("ABCDEF")

    def test_paper_configuration_of_b_and_d(self):
        assert CORE_WORKLOADS["B"].update_proportion == 1.0
        assert CORE_WORKLOADS["D"].insert_proportion == 0.95
        assert CORE_WORKLOADS["D"].record_count == 100_000
        assert CORE_WORKLOADS["D"].threads == 5
        assert CORE_WORKLOADS["D"].target_ops_per_second == 1500.0
        assert CORE_WORKLOADS["D"].partitions == 1

    def test_op_mix_sums_to_one(self):
        for workload in CORE_WORKLOADS.values():
            assert sum(workload.op_mix.values()) == pytest.approx(1.0)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            YCSBWorkload(name="bad", read_proportion=0.5)

    def test_hotspot_partition_weights_match_paper(self):
        weights = hotspot_partition_weights(4)
        assert weights == [0.34, 0.26, 0.20, 0.20]
        assert hotspot_partition_weights(1) == [1.0]
        assert sum(hotspot_partition_weights(6)) == pytest.approx(1.0)

    def test_partition_specs_sizes_and_ids(self):
        specs = partition_specs(CORE_WORKLOADS["A"])
        assert len(specs) == 4
        assert specs[0].partition_id == "A:part-0"
        assert sum(s.size_bytes for s in specs) == pytest.approx(
            CORE_WORKLOADS["A"].initial_size_bytes
        )

    def test_expected_requests_breakdown(self):
        spec = partition_specs(CORE_WORKLOADS["A"])[0]
        counts = spec.expected_requests(1000.0)
        assert counts["reads"] == pytest.approx(1000 * 0.34 * 0.5)
        assert counts["writes"] == pytest.approx(1000 * 0.34 * 0.5)

    def test_nominal_volume_ranks_read_above_scan(self):
        assert (
            CORE_WORKLOADS["C"].nominal_ops_per_second
            > CORE_WORKLOADS["E"].nominal_ops_per_second
        )
        assert CORE_WORKLOADS["D"].nominal_ops_per_second <= 1500.0


class TestYCSBScenario:
    def test_build_paper_scenario_creates_partitions_and_bindings(self):
        simulator = ClusterSimulator()
        simulator.add_node()
        scenario = build_paper_scenario(simulator)
        # 4 partitions per workload except D with a single one.
        assert len(scenario.partitions) == 21
        assert len(simulator.regions) == 21
        assert len(simulator.bindings) == 6
        assert len(scenario.expected_partition_workloads()) == 21

    def test_initial_data_volume_matches_paper(self):
        simulator = ClusterSimulator()
        simulator.add_node()
        build_paper_scenario(simulator)
        total_gb = sum(r.size_bytes for r in simulator.regions.values()) / 1e9
        # Paper: the cluster starts with around 7 GB of data.
        assert 4.0 <= total_gb <= 8.0


class TestYCSBClient:
    def test_key_format_preserves_order(self):
        assert format_key(1) < format_key(2) < format_key(10)

    def test_load_and_run_against_mini_hbase(self):
        cluster = MiniHBaseCluster(initial_servers=2)
        workload = YCSBWorkload(
            name="demo",
            read_proportion=0.4,
            update_proportion=0.3,
            insert_proportion=0.1,
            scan_proportion=0.1,
            read_modify_write_proportion=0.1,
            record_count=200,
            partitions=2,
            threads=1,
        )
        cluster.create_table(workload.table_name, split_keys=[format_key(100)])
        client = YCSBClient(cluster.client(), workload, seed=5)
        assert client.load() == 200
        result = client.run(300)
        assert result.operations == 300
        assert result.reads > 0 and result.updates > 0
        assert result.inserts > 0 and result.scans > 0
        assert result.read_modify_writes > 0
        # Keys are drawn from the loaded key space, so reads find data.
        assert result.read_misses < result.reads


class TestTPCCSchema:
    def test_nine_tables(self):
        assert len(TPCC_TABLES) == 9

    def test_paper_scale_configuration(self):
        config = TPCCConfig()
        assert config.warehouses == 30
        assert config.partitions == 6
        assert config.clients == 300
        # Paper: 30 warehouses give a database of roughly 15 GB.
        assert 8e9 <= config.database_bytes() <= 25e9

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            TPCCConfig(warehouses=0)
        with pytest.raises(ValueError):
            TPCCConfig(scale_factor=0.0)

    def test_key_encodings_sort_by_warehouse(self):
        assert warehouse_key(1) < warehouse_key(2) < warehouse_key(10)


class TestTPCCTransactions:
    def test_mix_weights_sum_to_one(self):
        assert sum(p.weight for p in TRANSACTION_MIX.values()) == pytest.approx(1.0)

    def test_read_only_fraction_is_about_8_percent(self):
        assert read_only_fraction() == pytest.approx(0.08)

    def test_aggregate_mix_is_write_heavy(self):
        mix = aggregate_operation_mix()
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix["update"] > 0.6  # classified as a write workload by MeT

    def test_operations_per_transaction_positive(self):
        assert operations_per_transaction() > 10

    def test_tpmc_conversion(self):
        ops_rate = operations_per_transaction() * 100.0  # 100 tx/s
        assert tpmc_from_ops_rate(ops_rate) == pytest.approx(100 * 0.45 * 60)

    def test_aggregate_mix_weights_footprints_by_transaction_frequency(self):
        """The aggregate mix is the weight-scaled footprint ratio, normalised."""
        mix = aggregate_operation_mix()
        reads = sum(p.weight * p.reads for p in TRANSACTION_MIX.values())
        total = sum(p.weight * p.operations for p in TRANSACTION_MIX.values())
        assert mix["read"] == pytest.approx(reads / total)
        assert set(mix) == {"read", "update", "scan"}
        assert all(share > 0 for share in mix.values())

    def test_tpmc_round_trip(self):
        """ops -> tpmC -> ops is the identity (and the alias is the same fn)."""
        for ops_rate in (1.0, 537.5, 2400.0, 100_000.0):
            assert ops_rate_from_tpmc(tpmc_from_ops_rate(ops_rate)) == pytest.approx(ops_rate)
        tpmc = 1234.5
        assert tpmc_from_ops_rate(ops_rate_from_tpmc(tpmc)) == pytest.approx(tpmc)
        assert tpmc_from_ops is tpmc_from_ops_rate


class TestTPCCFunctional:
    @pytest.fixture(scope="class")
    def tpcc_cluster(self):
        cluster = MiniHBaseCluster(initial_servers=2, config=TPCC_HOMOGENEOUS)
        config = TPCCConfig(warehouses=2, warehouses_per_node=1, clients=2, scale_factor=0.01)
        loader = TPCCLoader(cluster.client(), config, seed=3)
        loader.create_tables(cluster.master)
        loader.load()
        return cluster, config, loader

    def test_loader_populates_all_tables(self, tpcc_cluster):
        cluster, config, loader = tpcc_cluster
        assert loader.rows_loaded > 100
        client = cluster.client()
        assert client.get("warehouse", warehouse_key(1))
        assert client.get("item", "I#000001")

    def test_driver_runs_all_transaction_types(self, tpcc_cluster):
        cluster, config, _ = tpcc_cluster
        driver = TPCCDriver(cluster.client(), config, seed=7)
        result = driver.run(200)
        assert result.transactions == 200
        assert result.new_orders > 0
        assert result.tpmc > 0
        assert set(result.per_type) <= set(TRANSACTION_MIX)
        assert len(result.per_type) >= 4


class TestTPCCSimulatorBinding:
    def test_binding_addresses_all_partitions(self):
        config = TPCCConfig()
        binding = simulator_binding(config)
        assert binding.threads == 300
        assert len(binding.region_weights) == config.partitions
        assert sum(binding.region_weights.values()) == pytest.approx(1.0)

    def test_build_tpcc_scenario(self):
        simulator = ClusterSimulator()
        node = simulator.add_node()
        config, binding = build_tpcc_scenario(simulator, initial_node=node)
        assert len(simulator.regions) == config.partitions
        assert "tpcc" in simulator.bindings
        simulator.run(30.0)
        assert simulator.binding_throughput("tpcc") > 0

    def test_named_binding_namespaces_partitions_and_caps(self):
        config = TPCCConfig(warehouses=4, warehouses_per_node=2, clients=10)
        binding = simulator_binding(config, name="orders", target_ops_per_second=500.0)
        assert binding.name == "orders"
        assert all(r.startswith("orders:wpart-") for r in binding.region_weights)
        assert sum(binding.region_weights.values()) == pytest.approx(1.0)
        assert binding.target_ops_per_second == 500.0


class TestTenantProtocol:
    def test_ycsb_workload_coerces_to_adapter(self):
        tenant = as_tenant(CORE_WORKLOADS["A"])
        assert isinstance(tenant, YCSBTenant)
        assert tenant.name == "A"
        assert tenant.binding_name == "workload-A"
        assert tenant.unit_label == "ops/s"
        assert tenant.supports_mix_shift
        # Idempotent: an adapter passes through unchanged.
        assert as_tenant(tenant) is tenant

    def test_rejects_foreign_objects(self):
        with pytest.raises(TypeError, match="scenario tenant"):
            as_tenant(object())

    def test_ycsb_adapter_matches_workload_semantics(self):
        workload = CORE_WORKLOADS["A"]
        tenant = YCSBTenant(workload)
        assert tenant.nominal_ops_per_second == workload.nominal_ops_per_second
        assert tenant.op_mix == workload.op_mix
        specs = tenant.region_specs()
        assert [s.region_id for s in specs] == workload.partition_ids()
        assert sum(s.weight for s in specs) == pytest.approx(1.0)
        capped = tenant.with_target(1234.0)
        assert capped.target_ops_per_second == 1234.0
        assert capped.binding().target_ops_per_second == 1234.0
        # Unchanged target returns the same adapter (specs stay cheap).
        assert tenant.with_target(workload.target_ops_per_second) is tenant

    def test_tpcc_tenant_implements_protocol(self):
        config = TPCCConfig(warehouses=8, warehouses_per_node=2, clients=20, scale_factor=0.05)
        tenant = TPCCTenant(name="tpcc", config=config)
        assert isinstance(tenant, TenantWorkload)
        assert tenant.binding_name == "tpcc"
        assert tenant.unit_label == "tpmC"
        assert not tenant.supports_mix_shift
        specs = tenant.region_specs()
        assert len(specs) == config.partitions
        assert sum(s.weight for s in specs) == pytest.approx(1.0)
        assert all(s.region_id.startswith("tpcc:wpart-") for s in specs)
        # Warehouse-aligned partitions split the database evenly.
        assert sum(s.size_bytes for s in specs) == pytest.approx(config.database_bytes())

    def test_tpcc_tenant_rates_in_both_units(self):
        tenant = TPCCTenant(target_ops=2024.0)
        assert tenant.nominal_ops_per_second == 2024.0  # capped by target
        assert tenant.native_rate(2024.0) == pytest.approx(tpmc_from_ops_rate(2024.0))
        assert tenant.nominal_tpmc == pytest.approx(tpmc_from_ops_rate(2024.0))
        uncapped = tenant.with_target(None)
        assert uncapped.nominal_ops_per_second > 2024.0

    def test_tpcc_partition_workloads_are_write_heavy(self):
        tenant = TPCCTenant(target_ops=2000.0)
        expected = tenant.partition_workloads(window_seconds=60.0)
        assert len(expected) == tenant.config.partitions
        total = sum(p.total_requests for p in expected)
        assert total == pytest.approx(2000.0 * 60.0)
        assert all(p.writes > p.reads for p in expected)

    def test_two_tpcc_tenants_coexist(self):
        config = TPCCConfig(warehouses=4, warehouses_per_node=2, clients=5, scale_factor=0.02)
        first = TPCCTenant(name="tpcc-eu", config=config)
        second = TPCCTenant(name="tpcc-us", config=config)
        ids = {s.region_id for s in first.region_specs()} | {
            s.region_id for s in second.region_specs()
        }
        assert len(ids) == 2 * config.partitions  # no partition-id collisions
