"""Unit tests for the scenario engine: specs, schedules, events, faults."""

import pytest

from repro.iaas.vm import VMState
from repro.scenarios import (
    CANNED_SCENARIOS,
    DiurnalLoad,
    FlashCrowd,
    MixShift,
    NodeCrash,
    NodeRecovery,
    NodeSlowdown,
    ScenarioSpec,
    TenantArrival,
    TenantDeparture,
    TenantSpec,
    build_scenario,
    compile_spec,
    run_scenario,
)
from repro.scenarios.catalog import SMALL_A, SMALL_C, SMALL_E
from repro.scenarios.schedule import EventSchedule, ScheduledAction, control_steps
from repro.simulation.cluster import ClusterSimulator, SimulationError


def two_tenant_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="unit",
        tenants=(TenantSpec(SMALL_A, target_ops=2000.0), TenantSpec(SMALL_C, target_ops=2000.0)),
        duration_minutes=5.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpec:
    def test_rejects_empty_tenants(self):
        with pytest.raises(ValueError, match="at least one tenant"):
            ScenarioSpec(name="empty", tenants=())

    def test_rejects_duplicate_tenants(self):
        with pytest.raises(ValueError, match="duplicate"):
            ScenarioSpec(
                name="dup",
                tenants=(TenantSpec(SMALL_A), TenantSpec(SMALL_A)),
            )

    def test_configured_workload_applies_target(self):
        tenant = TenantSpec(SMALL_A, target_ops=1234.0)
        assert tenant.configured_workload().target_ops_per_second == 1234.0

    def test_with_events_appends(self):
        spec = two_tenant_spec()
        extended = spec.with_events(NodeCrash(minute=1.0))
        assert len(extended.events) == 1
        assert spec.events == ()


class TestSchedule:
    def test_fire_due_is_ordered_and_once(self):
        fired = []
        actions = [
            ScheduledAction(30.0, "b", lambda: fired.append("b")),
            ScheduledAction(10.0, "a", lambda: fired.append("a")),
            ScheduledAction(60.0, "c", lambda: fired.append("c")),
        ]
        schedule = EventSchedule(actions)
        first = schedule.fire_due(30.0)
        assert [a.label for a in first] == ["a", "b"]
        assert schedule.fire_due(30.0) == []
        assert [a.label for a in schedule.fire_due(120.0)] == ["c"]
        assert fired == ["a", "b", "c"]
        assert schedule.pending == 0

    def test_control_steps_cover_endpoints(self):
        spec = two_tenant_spec(control_interval_seconds=15.0)
        steps = control_steps(spec, 1.0, 2.0)
        assert steps[0] == 60.0
        assert steps[-1] == 120.0
        assert all(b - a <= 15.0 + 1e-9 for a, b in zip(steps, steps[1:]))

    def test_control_steps_clamp_to_duration(self):
        spec = two_tenant_spec(duration_minutes=5.0)
        steps = control_steps(spec, 4.5, 20.0)
        assert steps[-1] == 300.0


class TestLoadEvents:
    def test_diurnal_multiplier_oscillates(self):
        curve = DiurnalLoad(tenant="A", period_minutes=8.0, amplitude=0.5)
        assert curve.multiplier(2.0) == pytest.approx(1.5)
        assert curve.multiplier(6.0) == pytest.approx(0.5)
        assert curve.multiplier(0.0) == pytest.approx(1.0)

    def test_flash_crowd_profile(self):
        crowd = FlashCrowd(
            tenant="C", start_minute=2.0, ramp_minutes=1.0,
            hold_minutes=2.0, decay_minutes=1.0, magnitude=3.0,
        )
        assert crowd.multiplier(1.0) == 1.0
        assert crowd.multiplier(2.5) == pytest.approx(2.0)
        assert crowd.multiplier(4.0) == pytest.approx(3.0)
        assert crowd.multiplier(5.5) == pytest.approx(2.0)
        assert crowd.multiplier(7.0) == 1.0

    def test_flash_crowd_modulates_target_and_resets(self):
        spec = two_tenant_spec(
            events=(FlashCrowd(tenant="C", start_minute=1.0, magnitude=2.0),),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        schedule.fire_due(0.0)
        binding = simulator.bindings["workload-C"]
        assert binding.target_ops_per_second == 2000.0
        # Mid-hold the cap is doubled.
        schedule.fire_due(150.0)
        assert binding.target_ops_per_second == pytest.approx(4000.0)
        # After the decay it resets to the baseline.
        schedule.fire_due(spec.duration_seconds)
        assert binding.target_ops_per_second == pytest.approx(2000.0)

    def test_instant_decay_flash_crowd_is_valid(self):
        crowd = FlashCrowd(
            tenant="A", start_minute=1.0, ramp_minutes=0.0,
            hold_minutes=1.0, decay_minutes=0.0, magnitude=2.0,
        )
        assert crowd.multiplier(1.0) == 2.0
        assert crowd.multiplier(2.0) == 1.0
        spec = two_tenant_spec(events=(crowd,))
        _, _, context, _ = build_scenario(spec)
        assert compile_spec(spec, context).pending > 0

    def test_degenerate_curves_are_rejected_at_compile_time(self):
        for event in (
            DiurnalLoad(tenant="A", period_minutes=0.0),
            FlashCrowd(tenant="A", start_minute=1.0, decay_minutes=-1.0),
            FlashCrowd(tenant="A", start_minute=1.0, magnitude=0.0),
        ):
            spec = two_tenant_spec(events=(event,))
            _, _, context, _ = build_scenario(spec)
            with pytest.raises(ValueError):
                compile_spec(spec, context)

    def test_bounded_diurnal_returns_to_baseline(self):
        spec = two_tenant_spec(
            events=(
                DiurnalLoad(tenant="A", period_minutes=8.0, amplitude=0.6,
                            end_minute=2.0),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        schedule.fire_due(110.0)
        binding = simulator.bindings["workload-A"]
        assert binding.target_ops_per_second != pytest.approx(2000.0)
        # Past the curve's end the tenant is back at its baseline target.
        schedule.fire_due(130.0)
        assert binding.target_ops_per_second == pytest.approx(2000.0)

    def test_uncapped_tenant_returns_to_uncapped_after_curve(self):
        spec = two_tenant_spec(
            tenants=(TenantSpec(SMALL_A), TenantSpec(SMALL_C, target_ops=2000.0)),
            events=(FlashCrowd(tenant="A", start_minute=1.0, magnitude=2.0),),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        binding = simulator.bindings["workload-A"]
        assert binding.target_ops_per_second is None
        schedule.fire_due(150.0)
        assert binding.target_ops_per_second is not None
        schedule.fire_due(spec.duration_seconds)
        assert binding.target_ops_per_second is None

    def test_overlapping_curves_multiply(self):
        spec = two_tenant_spec(
            events=(
                DiurnalLoad(tenant="A", period_minutes=4.0, amplitude=0.5),
                FlashCrowd(tenant="A", start_minute=0.0, ramp_minutes=0.5,
                           hold_minutes=2.0, decay_minutes=0.5, magnitude=2.0),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        # At minute 1 the diurnal sine peaks (1.5x) and the crowd holds (2x).
        schedule.fire_due(60.0)
        binding = simulator.bindings["workload-A"]
        assert binding.target_ops_per_second == pytest.approx(2000.0 * 1.5 * 2.0)

    def test_stacked_same_class_curves_compose(self):
        """Two identical-looking events keep separate multiplier keys."""
        spec = two_tenant_spec(
            events=(
                FlashCrowd(tenant="A", start_minute=0.0, ramp_minutes=0.5,
                           hold_minutes=2.0, decay_minutes=0.5, magnitude=2.0),
                FlashCrowd(tenant="A", start_minute=0.0, ramp_minutes=0.5,
                           hold_minutes=2.0, decay_minutes=0.5, magnitude=3.0),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        schedule.fire_due(60.0)
        binding = simulator.bindings["workload-A"]
        assert binding.target_ops_per_second == pytest.approx(2000.0 * 2.0 * 3.0)

    def test_event_entirely_after_scenario_end_compiles_to_nothing(self):
        spec = two_tenant_spec(
            duration_minutes=5.0,
            events=(
                FlashCrowd(tenant="A", start_minute=12.0),
                MixShift(tenant="A", start_minute=8.0, end_minute=9.0,
                         to_mix=(("update", 1.0),)),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        assert schedule.pending == 0


class TestChurnAndMixEvents:
    def test_tenant_arrival_and_departure(self):
        spec = two_tenant_spec(
            events=(
                TenantArrival(minute=1.0, workload=SMALL_E, target_ops=300.0),
                TenantDeparture(minute=3.0, tenant="E"),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        schedule.fire_due(60.0)
        assert "workload-E" in simulator.bindings
        new_regions = [r for r in simulator.regions.values() if r.workload == "workload-E"]
        assert len(new_regions) == SMALL_E.partitions
        assert all(r.node is not None for r in new_regions)
        schedule.fire_due(180.0)
        assert "workload-E" not in simulator.bindings
        # Data stays behind, as a dropped client (not a dropped table) would.
        assert all(r.region_id in simulator.regions for r in new_regions)

    def test_mix_shift_interpolates_and_invalidates_kernel_cache(self):
        spec = two_tenant_spec(
            events=(
                MixShift(tenant="A", start_minute=0.0, end_minute=2.0,
                         to_mix=(("update", 1.0),)),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        before = simulator._workloads_version
        schedule.fire_due(60.0)
        binding = simulator.bindings["workload-A"]
        assert binding.op_mix["update"] == pytest.approx(0.75)
        assert binding.op_mix["read"] == pytest.approx(0.25)
        assert simulator._workloads_version > before
        schedule.fire_due(120.0)
        assert binding.op_mix == {"update": pytest.approx(1.0)}

    def test_truncated_mix_shift_settles_on_interpolated_mix(self):
        spec = two_tenant_spec(
            duration_minutes=5.0,
            events=(
                MixShift(tenant="A", start_minute=1.0, end_minute=9.0,
                         to_mix=(("update", 1.0),)),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        schedule.fire_due(spec.duration_seconds)
        binding = simulator.bindings["workload-A"]
        # Half the shift window elapsed: halfway between 50/50 and 0/100.
        assert binding.op_mix["update"] == pytest.approx(0.75)

    def test_truncated_growth_burst_applies_elapsed_share_only(self):
        from repro.scenarios import DataGrowthBurst
        from repro.scenarios.spec import binding_name

        spec = two_tenant_spec(
            duration_minutes=5.0,
            events=(
                DataGrowthBurst(tenant="A", start_minute=4.0,
                                duration_minutes=4.0, growth_factor=16.0),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        sizes_before = {
            r.region_id: r.size_bytes
            for r in simulator.regions.values()
            if r.workload == binding_name("A")
        }
        schedule = compile_spec(spec, context)
        schedule.fire_due(spec.duration_seconds)
        for region_id, before in sizes_before.items():
            after = simulator.regions[region_id].size_bytes
            # One of four minutes elapsed: 16x ** (1/4) = 2x, not 16x.
            assert after / before == pytest.approx(2.0, rel=1e-9)

    def test_mix_shift_on_tpcc_tenant_is_a_compile_time_error(self):
        """A TPC-C tenant's op mix is transaction-derived: shifting it must
        be rejected when the spec compiles, not silently corrupt the mix."""
        from repro.scenarios.catalog import SMALL_TPCC

        spec = ScenarioSpec(
            name="bad-mix-shift",
            tenants=(TenantSpec(SMALL_TPCC, target_ops=1500.0),),
            events=(
                MixShift(tenant="tpcc", start_minute=1.0, end_minute=3.0,
                         to_mix=(("update", 1.0),)),
            ),
            duration_minutes=5.0,
        )
        simulator, _, context, _ = build_scenario(spec)
        mix_before = dict(simulator.bindings["tpcc"].op_mix)
        with pytest.raises(ValueError, match="derived from TPCCTenant"):
            compile_spec(spec, context)
        assert simulator.bindings["tpcc"].op_mix == mix_before

    def test_tpcc_tenant_arrival_and_departure(self):
        """TPC-C tenants churn through scenarios like key-value ones."""
        from repro.workloads.tpcc.schema import TPCCConfig
        from repro.workloads.tpcc.tenant import TPCCTenant

        arriving = TPCCTenant(
            name="tpcc-late",
            config=TPCCConfig(warehouses=4, warehouses_per_node=2, clients=10,
                              scale_factor=0.02),
        )
        spec = two_tenant_spec(
            events=(
                TenantArrival(minute=1.0, workload=arriving, target_ops=400.0),
                TenantDeparture(minute=3.0, tenant="tpcc-late"),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        schedule.fire_due(60.0)
        binding = simulator.bindings["tpcc-late"]
        assert binding.target_ops_per_second == 400.0
        new_regions = [
            r for r in simulator.regions.values() if r.workload == "tpcc-late"
        ]
        assert len(new_regions) == arriving.config.partitions
        assert all(r.node is not None for r in new_regions)
        # The TPC-C read skew hints reached the simulator's regions.
        assert all(r.hot_data_fraction == pytest.approx(0.05) for r in new_regions)
        schedule.fire_due(180.0)
        assert "tpcc-late" not in simulator.bindings
        assert all(r.region_id in simulator.regions for r in new_regions)
        # The departed tenant's name still resolves to its own binding name:
        # a growth burst on the orphaned dataset must find the regions, not
        # fall back to the YCSB naming convention and silently grow nothing.
        detail = context.grow_tenant_data("tpcc-late", 2.0)
        assert f"over {arriving.config.partitions} partitions" in detail

    def test_update_workload_rejects_unknown_tenant(self):
        simulator = ClusterSimulator()
        with pytest.raises(SimulationError, match="unknown workload"):
            simulator.update_workload("nope", target_ops_per_second=1.0)

    def test_update_workload_rejects_invalid_mix_without_leaking_it(self):
        spec = two_tenant_spec()
        simulator, _, _, _ = build_scenario(spec)
        binding = simulator.bindings["workload-A"]
        before = dict(binding.op_mix)
        with pytest.raises(ValueError, match="op mix"):
            simulator.update_workload("workload-A", op_mix={"read": 2.0})
        assert binding.op_mix == before


class TestFaultEvents:
    def test_node_crash_removes_node_and_reassigns(self):
        spec = two_tenant_spec(events=(NodeCrash(minute=1.0),))
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        before = set(simulator.nodes)
        fired = schedule.fire_due(60.0)
        assert [a.label for a in fired] == ["node-crash"]
        victim = fired[0].detail
        assert victim in before
        assert victim not in simulator.nodes
        assert all(r.node != victim for r in simulator.regions.values())
        # The crash is reproducible: same seed picks the same victim.
        sim2, _, ctx2, _ = build_scenario(spec)
        assert compile_spec(spec, ctx2).fire_due(60.0)[0].detail == victim

    def test_slowdown_and_recovery_roundtrip(self):
        spec = two_tenant_spec(
            events=(NodeSlowdown(minute=1.0, factor=0.5, duration_minutes=1.0),),
        )
        simulator, _, context, _ = build_scenario(spec)
        healthy_cpu = next(iter(simulator.nodes.values())).hardware.cpu_millis_per_second
        schedule = compile_spec(spec, context)
        fired = schedule.fire_due(60.0)
        victim = fired[0].detail.split(" ", 1)[0]
        degraded = simulator.nodes[victim].hardware.cpu_millis_per_second
        assert degraded == pytest.approx(healthy_cpu * 0.5)
        schedule.fire_due(120.0)
        restored = simulator.nodes[victim].hardware.cpu_millis_per_second
        assert restored == pytest.approx(healthy_cpu)

    def test_degrade_restore_primitive(self):
        simulator = ClusterSimulator()
        name = simulator.add_node()
        original = simulator.nodes[name].hardware
        simulator.degrade_node(name, 0.25)
        assert simulator.nodes[name].hardware.cpu_millis_per_second == pytest.approx(
            original.cpu_millis_per_second * 0.25
        )
        assert simulator.nodes[name].hardware.memory_bytes == original.memory_bytes
        simulator.restore_node(name)
        assert simulator.nodes[name].hardware is original

    def test_recovery_after_victim_vanished_is_a_noop(self):
        """A scheduled recovery must not abort the run when the straggler
        was scaled away (or crashed) before it fired."""
        spec = two_tenant_spec(
            events=(NodeSlowdown(minute=1.0, factor=0.5, duration_minutes=1.0),),
        )
        simulator, _, context, _ = build_scenario(spec)
        schedule = compile_spec(spec, context)
        fired = schedule.fire_due(60.0)
        victim = fired[0].detail.split(" ", 1)[0]
        simulator.remove_node(victim)
        recovery = schedule.fire_due(120.0)
        assert [a.label for a in recovery] == ["node-recovery"]
        assert victim not in simulator.nodes

    def test_degrade_rejects_bad_factor(self):
        simulator = ClusterSimulator()
        name = simulator.add_node()
        with pytest.raises(SimulationError):
            simulator.degrade_node(name, 0.0)
        with pytest.raises(SimulationError):
            simulator.degrade_node(name, 1.5)

    def test_crash_without_provider_keeps_vm_mapping(self):
        """Regression: crash_node used to pop the node->instance mapping even
        with no provider attached, losing the inventory record."""
        from repro.iaas.faults import FaultInjector

        simulator = ClusterSimulator()
        name = simulator.add_node()
        vm_ids = {name: "vm-99"}
        injector = FaultInjector(simulator, provider=None, vm_ids=vm_ids, seed=1)
        injector.crash_node(name)
        assert vm_ids == {name: "vm-99"}, "mapping consumed without a provider fault"

    def test_recover_crashed_node_rejoins_and_relaunches_vm(self):
        from repro.core.backends import SimulatorBackend
        from repro.hbase.config import DEFAULT_HOMOGENEOUS
        from repro.iaas.faults import FaultInjector
        from repro.iaas.provider import OpenStackProvider

        simulator = ClusterSimulator()
        simulator.add_node()
        provider = OpenStackProvider(simulator.clock, boot_seconds=30.0)
        backend = SimulatorBackend(simulator, provider=provider)
        name = backend.add_node(DEFAULT_HOMOGENEOUS, "default")
        simulator.run(60.0)
        injector = FaultInjector(
            simulator, provider=provider, vm_ids=backend.vm_ids, seed=1
        )
        old_vm = backend.vm_ids[name]
        injector.crash_node(name)
        assert injector.crashed_nodes == [name]
        recovered = injector.recover_crashed_node()
        assert recovered == name
        assert injector.crashed_nodes == []
        # A replacement instance backs the rejoined node; the dead one stays
        # in the inventory in ERROR for accounting.
        assert backend.vm_ids[name] != old_vm
        assert name in simulator.nodes
        assert not simulator.nodes[name].online  # boots first
        simulator.run(simulator.boot_seconds + simulator.clock.tick_seconds)
        assert simulator.nodes[name].online

    def test_recover_crashed_straggler_rejoins_at_full_health(self):
        from repro.iaas.faults import FaultInjector

        simulator = ClusterSimulator()
        name = simulator.add_node()
        healthy = simulator.nodes[name].hardware
        simulator.degrade_node(name, 0.5)
        injector = FaultInjector(simulator, seed=1)
        injector.crash_node(name)
        injector.recover_crashed_node(name)
        assert simulator.nodes[name].hardware == healthy

    def test_recover_without_crash_raises_but_event_is_tolerant(self):
        from repro.iaas.faults import FaultInjector

        spec = two_tenant_spec(events=(NodeRecovery(minute=1.0),))
        simulator, _, context, _ = build_scenario(spec)
        injector = FaultInjector(simulator, seed=1)
        with pytest.raises(RuntimeError, match="no crashed node"):
            injector.recover_crashed_node()
        # The scheduled event becomes a no-op instead of aborting the run.
        schedule = compile_spec(spec, context)
        fired = schedule.fire_due(60.0)
        assert [a.label for a in fired] == ["node-rejoin"]
        assert fired[0].detail == "no crashed node"
        # A *named* rejoin of a healthy node is equally tolerant.
        assert context.recover_crashed_node("rs-1") == "rs-1 not crashed"

    def test_crash_recover_crash_cascade(self):
        """The cascading-failure primitive: a second crash lands while the
        first victim is still booting back."""
        spec = two_tenant_spec(
            duration_minutes=8.0,
            events=(
                NodeCrash(minute=1.0),
                NodeRecovery(minute=2.0),
                NodeCrash(minute=3.0),
            ),
        )
        result = run_scenario(spec, controller="none")
        labels = [a.label for a in result.run.annotations]
        assert labels.count("node-crash") == 2
        assert labels.count("node-rejoin") == 1
        # Started with 3: -1 crash, +1 rejoin, -1 crash = 2 online at the end.
        assert result.final_nodes == 2

    def test_network_only_slowdown_leaves_cpu_and_disk_budgets(self):
        spec = two_tenant_spec(
            events=(
                NodeSlowdown(minute=1.0, factor=1.0, network_factor=0.2),
            ),
        )
        simulator, _, context, _ = build_scenario(spec)
        healthy = next(iter(simulator.nodes.values())).hardware
        schedule = compile_spec(spec, context)
        fired = schedule.fire_due(60.0)
        victim = fired[0].detail.split(" ", 1)[0]
        degraded = simulator.nodes[victim].hardware
        assert degraded.network_mb_per_second == pytest.approx(
            healthy.network_mb_per_second * 0.2
        )
        assert degraded.cpu_millis_per_second == healthy.cpu_millis_per_second
        assert degraded.disk_iops == healthy.disk_iops
        assert degraded.disk_mb_per_second == healthy.disk_mb_per_second

    def test_network_degradation_shifts_the_bottleneck(self):
        """The cost model pins a scan-heavy node on its (degraded) network."""
        from repro.hbase.config import DEFAULT_HOMOGENEOUS
        from repro.simulation.hardware import HardwareSpec
        from repro.simulation.perfmodel import PerformanceModel, RegionLoadProfile

        region = RegionLoadProfile(
            region_id="r", size_bytes=512 * 1024 * 1024, scan_rate=120.0,
        )
        config = DEFAULT_HOMOGENEOUS.validate()
        healthy = PerformanceModel(HardwareSpec()).evaluate_node(config, [region])
        degraded_hw = HardwareSpec(network_mb_per_second=110.0 * 0.1)
        degraded = PerformanceModel(degraded_hw).evaluate_node(config, [region])
        assert degraded.bottleneck == "network"
        assert degraded.utilization > healthy.utilization

    def test_crash_through_provider_marks_vm_error(self):
        from repro.core.backends import SimulatorBackend
        from repro.hbase.config import DEFAULT_HOMOGENEOUS
        from repro.iaas.faults import FaultInjector
        from repro.iaas.provider import OpenStackProvider

        simulator = ClusterSimulator()
        simulator.add_node()
        provider = OpenStackProvider(simulator.clock, boot_seconds=0.0)
        backend = SimulatorBackend(simulator, provider=provider)
        name = backend.add_node(DEFAULT_HOMOGENEOUS, "default")
        simulator.run(10.0)
        injector = FaultInjector(
            simulator, provider=provider, vm_ids=backend.vm_ids, seed=1
        )
        injector.crash_node(name)
        assert name not in simulator.nodes
        vm = next(iter(provider.instances.values()))
        assert vm.state == VMState.ERROR


class TestHarnessScheduleIntegration:
    def test_annotations_recorded_per_event(self):
        spec = CANNED_SCENARIOS["tenant_churn"]
        result = run_scenario(spec, controller="none")
        labels = [a.label for a in result.run.annotations]
        assert "tenant-arrival:E" in labels
        assert "tenant-departure:E" in labels
        arrival = next(a for a in result.run.annotations if "arrival" in a.label)
        assert arrival.minute == pytest.approx(2.5)

    def test_annotation_minute_is_the_scheduled_time(self):
        """Even with a tick that does not divide the event time."""
        from dataclasses import replace

        spec = replace(CANNED_SCENARIOS["tenant_churn"], tick_seconds=7.0)
        result = run_scenario(spec, controller="none")
        arrival = next(a for a in result.run.annotations if "arrival" in a.label)
        assert arrival.minute == pytest.approx(2.5)

    def test_uncontrolled_run_tracks_load_curve(self):
        spec = CANNED_SCENARIOS["diurnal"]
        result = run_scenario(spec, controller="none")
        throughputs = [p.throughput for p in result.run.series]
        # The sinusoid must actually modulate achieved throughput.
        assert max(throughputs) > 1.1 * min(t for t in throughputs if t > 0)

    def test_run_scenario_rejects_unknown_controller(self):
        with pytest.raises(ValueError, match="unknown controller"):
            run_scenario(two_tenant_spec(), controller="magic")


class TestSweepHygiene:
    """Satellite fix: batch runs must not pin simulators alive.

    ``keep_simulator=False`` severs the simulator's internal reference
    cycles (``region._owner`` back-references, the solver's simulator
    handle, the MeT<->Actuator completion callback), so each discarded run
    frees by *refcount* alone.  With the cycle collector switched off, a
    sweep that leaked would accumulate one ClusterSimulator per run -- the
    bug that made long campaign sweeps balloon before this fix.
    """

    def test_fifty_discarded_runs_leave_no_live_simulators(self):
        import gc

        spec = ScenarioSpec(
            name="hygiene",
            tenants=(TenantSpec(SMALL_A, target_ops=1500.0),),
            duration_minutes=1.0,
            initial_nodes=2,
            max_nodes=3,
        )
        gc.collect()
        gc.disable()
        try:
            for _ in range(50):
                run_scenario(spec, controller="met", keep_simulator=False)
            live = [
                obj for obj in gc.get_objects()
                if isinstance(obj, ClusterSimulator)
            ]
            assert len(live) <= 1, (
                f"{len(live)} simulators still alive after 50 discarded "
                "runs: a reference cycle is pinning them (dispose() or the "
                "actuator-callback severing regressed)"
            )
        finally:
            gc.enable()
            gc.collect()

    def test_kept_simulator_still_works(self):
        spec = two_tenant_spec(duration_minutes=1.0)
        result = run_scenario(spec, controller="none")  # keep_simulator=True
        assert result.simulator is not None
        result.simulator.tick()  # still usable: dispose() must not have run
