"""Unit and property tests for the scenario assertions DSL and the event
schedule's exactly-once firing guarantee across chained windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import (
    ExperimentHarness,
    RunAnnotation,
    StrategyRun,
    TimeSeriesPoint,
)
from repro.scenarios import (
    ADD_NODE,
    CANNED_SCENARIOS,
    RECONFIGURE,
    REMOVE_NODE,
    NoOscillation,
    ReconfiguresBefore,
    RecoversWithin,
    StaysWithin,
    controller_actions,
    evaluate_assertions,
    run_scenario,
)
from repro.scenarios.runner import ScenarioRunResult
from repro.scenarios.schedule import EventSchedule, ScheduledAction
from repro.simulation.cluster import ClusterSimulator


def fake_result(
    decisions=(),
    series=(),
    annotations=(),
    controller="met",
    spec_assertions=(),
):
    """A ScenarioRunResult shaped like a real run, without running one."""
    from dataclasses import replace

    spec = replace(CANNED_SCENARIOS["flash_crowd"], assertions=tuple(spec_assertions))
    run = StrategyRun(name="fake")
    run.series = [
        TimeSeriesPoint(minute=m, throughput=t, cumulative_ops=0.0, nodes=n)
        for m, t, n in series
    ]
    run.annotations = [RunAnnotation(minute=m, label=label) for m, label in annotations]
    run.final_nodes = run.series[-1].nodes if run.series else 0
    return ScenarioRunResult(
        spec=spec,
        controller=controller,
        kernel="fast",
        run=run,
        decisions=[dict(d) for d in decisions],
    )


def plan(minute, restarts=0, adds=0, removes=0, moves=0):
    return {
        "minute": minute,
        "kind": "plan",
        "detail": f"initial=False restarts={restarts} adds={adds} "
        f"removes={removes} moves={moves}",
    }


class TestControllerActions:
    def test_met_plan_explodes_into_components(self):
        actions = controller_actions(
            [plan(2.0, restarts=2, adds=1), plan(5.0, moves=3), plan(7.0, removes=1)]
        )
        assert actions == [
            (2.0, RECONFIGURE),
            (2.0, ADD_NODE),
            (5.0, RECONFIGURE),
            (7.0, REMOVE_NODE),
        ]

    def test_tiramola_events_pass_through(self):
        decisions = [
            {"minute": 1.0, "kind": "add_node", "detail": "rs-auto-1"},
            {"minute": 4.0, "kind": "remove_node", "detail": "rs-2"},
            {"minute": 5.0, "kind": "healthy", "detail": ""},
        ]
        assert controller_actions(decisions) == [
            (1.0, ADD_NODE),
            (4.0, REMOVE_NODE),
        ]


class TestReconfiguresBefore:
    def test_passes_when_reconfigure_precedes_add(self):
        result = fake_result(decisions=[plan(2.0, restarts=1), plan(4.0, adds=1)])
        verdict = ReconfiguresBefore().evaluate(result)
        assert verdict.passed

    def test_fails_when_add_comes_first(self):
        result = fake_result(decisions=[plan(2.0, adds=1), plan(4.0, restarts=1)])
        verdict = ReconfiguresBefore().evaluate(result)
        assert not verdict.passed
        assert "precedes" in verdict.detail

    def test_fails_without_any_reconfiguration(self):
        result = fake_result(decisions=[plan(2.0, adds=1)])
        verdict = ReconfiguresBefore().evaluate(result)
        assert not verdict.passed
        assert verdict.detail == "never reconfigured"

    def test_passes_when_reconfiguration_suffices(self):
        result = fake_result(decisions=[plan(2.0, restarts=2, moves=3)])
        verdict = ReconfiguresBefore().evaluate(result)
        assert verdict.passed
        assert "no add_node needed" in verdict.detail

    def test_same_plan_reconfigure_and_add_fails(self):
        """A bundled plan acts at one minute; ties are not 'before'."""
        result = fake_result(decisions=[plan(2.0, restarts=1, adds=1)])
        assert not ReconfiguresBefore().evaluate(result).passed


class TestNoOscillation:
    def test_monotone_history_has_no_flips(self):
        result = fake_result(
            decisions=[
                {"minute": 1.0, "kind": "add_node", "detail": ""},
                {"minute": 3.0, "kind": "add_node", "detail": ""},
            ]
        )
        verdict = NoOscillation().evaluate(result)
        assert verdict.passed

    def test_thrash_counts_direction_changes(self):
        kinds = ["add_node", "remove_node", "add_node", "remove_node"]
        result = fake_result(
            decisions=[
                {"minute": float(i), "kind": kind, "detail": ""}
                for i, kind in enumerate(kinds)
            ]
        )
        assert not NoOscillation(max_flips=2).evaluate(result).passed
        assert NoOscillation(max_flips=3).evaluate(result).passed


class TestRecoversWithin:
    SERIES = [
        (0.0, 4000.0, 3), (1.0, 4000.0, 3), (2.0, 4000.0, 3),
        (3.0, 1500.0, 2), (4.0, 2000.0, 2), (5.0, 3900.0, 3), (6.0, 4000.0, 3),
    ]

    def test_recovery_inside_deadline_passes(self):
        result = fake_result(
            series=self.SERIES, annotations=[(2.5, "node-crash")]
        )
        verdict = RecoversWithin(minutes=4.0, fraction=0.9).evaluate(result)
        assert verdict.passed
        assert "recovered" in verdict.detail

    def test_missed_deadline_fails(self):
        result = fake_result(
            series=self.SERIES, annotations=[(2.5, "node-crash")]
        )
        verdict = RecoversWithin(minutes=1.5, fraction=0.9).evaluate(result)
        assert not verdict.passed

    def test_label_matches_by_prefix(self):
        result = fake_result(
            series=self.SERIES, annotations=[(2.5, "flash-crowd-end:C")]
        )
        verdict = RecoversWithin(
            minutes=4.0, after_label="flash-crowd-end", fraction=0.9
        ).evaluate(result)
        assert verdict.passed

    def test_missing_event_fails_loudly(self):
        result = fake_result(series=self.SERIES)
        verdict = RecoversWithin().evaluate(result)
        assert not verdict.passed
        assert "annotation" in verdict.detail


class TestStaysWithin:
    def test_envelope_respected(self):
        result = fake_result(series=[(0.0, 1.0, 3), (1.0, 1.0, 4)])
        assert StaysWithin(min_nodes=3, max_nodes=4).evaluate(result).passed

    def test_floor_violation_fails(self):
        result = fake_result(series=[(0.0, 1.0, 3), (1.0, 1.0, 1)])
        verdict = StaysWithin(min_nodes=2).evaluate(result)
        assert not verdict.passed
        assert "shrank" in verdict.detail

    def test_ceiling_violation_fails(self):
        result = fake_result(series=[(0.0, 1.0, 3), (1.0, 1.0, 7)])
        verdict = StaysWithin(max_nodes=6).evaluate(result)
        assert not verdict.passed
        assert "grew" in verdict.detail


class TestEvaluation:
    def test_controller_scoping(self):
        assertions = (
            ReconfiguresBefore(controllers=("met",)),
            StaysWithin(min_nodes=1),
        )
        met = fake_result(
            decisions=[plan(1.0, restarts=1)],
            series=[(0.0, 1.0, 3)],
            controller="met",
            spec_assertions=assertions,
        )
        tiramola = fake_result(
            series=[(0.0, 1.0, 3)],
            controller="tiramola",
            spec_assertions=assertions,
        )
        assert len(evaluate_assertions(met)) == 2
        assert len(evaluate_assertions(tiramola)) == 1

    def test_deliberately_failing_assertion_is_recorded_not_raised(self):
        """A failing declaration yields a failed verdict in the result, not
        an exception -- traces must record the violation."""
        spec = CANNED_SCENARIOS["flash_crowd"].with_assertions(
            StaysWithin(max_nodes=1),  # guaranteed violation: 3 initial nodes
        )
        result = run_scenario(spec, controller="none", keep_simulator=False)
        failed = [v for v in result.assertions if not v.passed]
        assert failed, "the impossible envelope should have failed"
        assert not result.assertions_passed
        assert "StaysWithin" in failed[0].assertion

    def test_describe_is_stable_and_omits_defaults(self):
        assert NoOscillation().describe() == "NoOscillation()"
        assert NoOscillation(max_flips=2).describe() == "NoOscillation(max_flips=2)"
        described = RecoversWithin(minutes=3.0, fraction=0.8).describe()
        assert described == "RecoversWithin(minutes=3.0, fraction=0.8)"


class TestFireDueExactlyOnce:
    """EventSchedule.fire_due across chained windows (harness run_for)."""

    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
            min_size=1,
            max_size=25,
        ),
        cuts=st.lists(
            st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
            max_size=4,
        ),
    )
    def test_each_action_fires_exactly_once(self, times, cuts):
        fired: list[int] = []
        actions = [
            ScheduledAction(t, f"a{i}", apply=lambda i=i: fired.append(i) or "")
            for i, t in enumerate(times)
        ]
        schedule = EventSchedule(actions)
        # Chained windows with arbitrary (sorted) cut points, then the end.
        for now in sorted(cuts) + [600.0]:
            schedule.fire_due(now)
        assert sorted(fired) == list(range(len(times)))
        assert schedule.pending == 0
        # Firing order is by time, with ties in spec order.
        order = sorted(range(len(times)), key=lambda i: (times[i], i))
        assert fired == order

    def test_same_instant_actions_keep_spec_order(self):
        fired = []
        schedule = EventSchedule(
            [
                ScheduledAction(60.0, "first", apply=lambda: fired.append("first")),
                ScheduledAction(60.0, "second", apply=lambda: fired.append("second")),
                ScheduledAction(0.0, "zeroth", apply=lambda: fired.append("zeroth")),
            ]
        )
        schedule.fire_due(120.0)
        assert fired == ["zeroth", "first", "second"]

    def test_chained_run_for_sees_each_event_exactly_once(self):
        """Events on window boundaries fire once even when the harness run
        is split into back-to-back run_for calls."""
        counts = {"start": 0, "boundary": 0, "end": 0}

        def bump(key):
            counts[key] += 1
            return key

        simulator = ClusterSimulator(tick_seconds=5.0)
        simulator.add_node()
        harness = ExperimentHarness(simulator)
        schedule = EventSchedule(
            [
                ScheduledAction(0.0, "start", apply=lambda: bump("start")),
                ScheduledAction(60.0, "boundary", apply=lambda: bump("boundary")),
                ScheduledAction(120.0, "end", apply=lambda: bump("end")),
            ]
        )
        harness.run_for(60.0, schedule=schedule)
        assert counts == {"start": 1, "boundary": 1, "end": 0}
        harness.run_for(60.0, schedule=schedule)
        assert counts == {"start": 1, "boundary": 1, "end": 1}
        # A third window finds nothing left to fire.
        harness.run_for(60.0, schedule=schedule)
        assert counts == {"start": 1, "boundary": 1, "end": 1}
