"""MeT vs tiramola decision divergence under a flash crowd (Section 6.4).

The paper's core behavioural claim: facing the same overload, the
workload-aware controller first *reconfigures* what it already has
(node profiles, placement, compactions) and only then provisions, while the
workload-oblivious baseline can do nothing but add homogeneous nodes and
let the random balancer shuffle data.  The flash-crowd scenario reproduces
that divergence at reduced scale; this suite asserts its shape directly
from fresh runs (the golden suite pins the exact numbers).
"""

import pytest

from repro.scenarios import CANNED_SCENARIOS, run_scenario


@pytest.fixture(scope="module")
def flash_crowd_runs():
    spec = CANNED_SCENARIOS["flash_crowd"]
    met = run_scenario(spec, controller="met", keep_simulator=False)
    tiramola = run_scenario(spec, controller="tiramola", keep_simulator=False)
    return met, tiramola


def _met_plans(met) -> list[dict]:
    plans = []
    for decision in met.decisions:
        if decision["kind"] != "plan":
            continue
        detail = dict(
            part.split("=", 1) for part in decision["detail"].split() if "=" in part
        )
        plans.append(
            {
                "minute": decision["minute"],
                "restarts": int(detail.get("restarts", 0)),
                "adds": int(detail.get("adds", 0)),
                "moves": int(detail.get("moves", 0)),
            }
        )
    return plans


class TestFlashCrowdDivergence:
    def test_met_reconfigures_before_adding_nodes(self, flash_crowd_runs):
        met, _ = flash_crowd_runs
        plans = _met_plans(met)
        assert plans, "MeT never reacted to the flash crowd"
        first = plans[0]
        assert first["restarts"] > 0 or first["moves"] > 0
        assert first["adds"] == 0, (
            "MeT's first reaction must be a reconfiguration, not provisioning"
        )
        first_reconfigure = next(
            p["minute"] for p in plans if p["restarts"] > 0 or p["moves"] > 0
        )
        add_minutes = [p["minute"] for p in plans if p["adds"] > 0]
        if add_minutes:
            assert first_reconfigure < min(add_minutes)

    def test_tiramola_only_adds_nodes(self, flash_crowd_runs):
        _, tiramola = flash_crowd_runs
        kinds = {decision["kind"] for decision in tiramola.decisions}
        assert "add_node" in kinds, "tiramola never scaled out under the crowd"
        assert kinds <= {"add_node", "remove_node"}, (
            f"tiramola is workload-oblivious and must not reconfigure: {kinds}"
        )

    def test_met_uses_no_more_machines(self, flash_crowd_runs):
        met, tiramola = flash_crowd_runs
        met_peak = max(point.nodes for point in met.run.series)
        tiramola_peak = max(point.nodes for point in tiramola.run.series)
        assert met_peak <= tiramola_peak
        assert met.run.machine_minutes <= tiramola.run.machine_minutes

    def test_met_reaches_higher_peak_throughput(self, flash_crowd_runs):
        met, tiramola = flash_crowd_runs
        crowd_window = [
            point.throughput
            for point in met.run.series
            if 3.0 <= point.minute <= 9.0
        ]
        tiramola_window = [
            point.throughput
            for point in tiramola.run.series
            if 3.0 <= point.minute <= 9.0
        ]
        assert max(crowd_window) > max(tiramola_window)
