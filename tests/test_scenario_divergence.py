"""MeT vs tiramola decision divergence under a flash crowd (Section 6.4).

The paper's core behavioural claim: facing the same overload, the
workload-aware controller first *reconfigures* what it already has
(node profiles, placement, compactions) and only then provisions, while the
workload-oblivious baseline can do nothing but add homogeneous nodes and
let the random balancer shuffle data.

The single-run expectations are *declared on the scenario spec itself*
through the assertions DSL (:mod:`repro.scenarios.assertions`) -- this
suite checks the evaluated verdicts rather than re-deriving them, and keeps
only the genuinely cross-run comparisons (machine cost, peak throughput)
that a per-run assertion cannot express.  The golden suite pins the exact
numbers.
"""

import pytest

from repro.scenarios import (
    ADD_NODE,
    CANNED_SCENARIOS,
    REMOVE_NODE,
    ReconfiguresBefore,
    controller_actions,
    run_scenario,
)


@pytest.fixture(scope="module")
def flash_crowd_runs():
    spec = CANNED_SCENARIOS["flash_crowd"]
    met = run_scenario(spec, controller="met", keep_simulator=False)
    tiramola = run_scenario(spec, controller="tiramola", keep_simulator=False)
    return met, tiramola


class TestFlashCrowdDivergence:
    def test_spec_declares_the_divergence(self):
        """The reconfigure-before-provision claim lives in the spec, scoped
        to the controller it is meaningful for."""
        spec = CANNED_SCENARIOS["flash_crowd"]
        declared = [
            a for a in spec.assertions if isinstance(a, ReconfiguresBefore)
        ]
        assert declared, "flash_crowd must declare ReconfiguresBefore"
        assert declared[0].controllers == ("met",)

    def test_met_satisfies_its_declared_assertions(self, flash_crowd_runs):
        met, _ = flash_crowd_runs
        assert met.assertions, "MeT run evaluated no assertions"
        for verdict in met.assertions:
            assert verdict.passed, f"{verdict.assertion}: {verdict.detail}"
        # The scoped ReconfiguresBefore was actually among them.
        assert any("ReconfiguresBefore" in v.assertion for v in met.assertions)

    def test_tiramola_skips_met_scoped_assertions(self, flash_crowd_runs):
        _, tiramola = flash_crowd_runs
        assert all(
            "ReconfiguresBefore" not in v.assertion for v in tiramola.assertions
        ), "a met-scoped assertion leaked into the tiramola run"
        for verdict in tiramola.assertions:
            assert verdict.passed, f"{verdict.assertion}: {verdict.detail}"

    def test_tiramola_only_adds_nodes(self, flash_crowd_runs):
        _, tiramola = flash_crowd_runs
        actions = controller_actions(tiramola.decisions)
        kinds = {kind for _, kind in actions}
        assert ADD_NODE in kinds, "tiramola never scaled out under the crowd"
        assert kinds <= {ADD_NODE, REMOVE_NODE}, (
            f"tiramola is workload-oblivious and must not reconfigure: {kinds}"
        )

    def test_met_uses_no_more_machines(self, flash_crowd_runs):
        met, tiramola = flash_crowd_runs
        met_peak = max(point.nodes for point in met.run.series)
        tiramola_peak = max(point.nodes for point in tiramola.run.series)
        assert met_peak <= tiramola_peak
        assert met.run.machine_minutes <= tiramola.run.machine_minutes

    def test_met_reaches_higher_peak_throughput(self, flash_crowd_runs):
        met, tiramola = flash_crowd_runs
        crowd_window = [
            point.throughput
            for point in met.run.series
            if 3.0 <= point.minute <= 9.0
        ]
        tiramola_window = [
            point.throughput
            for point in tiramola.run.series
            if 3.0 <= point.minute <= 9.0
        ]
        assert max(crowd_window) > max(tiramola_window)
