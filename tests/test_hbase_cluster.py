"""Tests for RegionServers, balancers, the master and the client API."""

import pytest

from repro.hbase.balancer import RandomBalancer, StochasticLoadBalancer
from repro.hbase.cluster import MiniHBaseCluster
from repro.hbase.config import RegionServerConfig
from repro.hbase.errors import NoSuchRegionError, NoSuchRegionServerError, NoSuchTableError
from repro.hbase.regionserver import BlockCache
from repro.core.profiles import NODE_PROFILES


class TestBlockCache:
    def test_insert_touch_and_eviction(self):
        cache = BlockCache(capacity_bytes=100)
        cache.insert(("f", 0), 60)
        cache.insert(("f", 1), 60)  # evicts the first block
        assert ("f", 1) in cache
        assert ("f", 0) not in cache
        assert cache.used_bytes <= 100

    def test_touch_marks_recent(self):
        cache = BlockCache(capacity_bytes=120)
        cache.insert(("f", 0), 60)
        cache.insert(("f", 1), 60)
        assert cache.touch(("f", 0))
        cache.insert(("f", 2), 60)  # evicts ("f", 1), the least recently used
        assert ("f", 0) in cache
        assert ("f", 1) not in cache

    def test_oversized_block_not_cached(self):
        cache = BlockCache(capacity_bytes=10)
        cache.insert(("f", 0), 100)
        assert len(cache) == 0

    def test_evict_file_and_clear(self):
        cache = BlockCache(capacity_bytes=1000)
        cache.insert(("a", 0), 10)
        cache.insert(("b", 0), 10)
        cache.evict_file("a")
        assert ("a", 0) not in cache and ("b", 0) in cache
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_resize_evicts(self):
        cache = BlockCache(capacity_bytes=100)
        cache.insert(("a", 0), 50)
        cache.insert(("b", 0), 50)
        cache.resize(60)
        assert cache.used_bytes <= 60


class TestBalancers:
    def test_random_balancer_even_counts(self):
        balancer = RandomBalancer(seed=0)
        regions = [f"r{i}" for i in range(10)]
        servers = ["s1", "s2", "s3"]
        assignment = balancer.assign(regions, servers)
        counts = {s: list(assignment.values()).count(s) for s in servers}
        assert set(assignment) == set(regions)
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_random_balancer_requires_servers(self):
        with pytest.raises(ValueError):
            RandomBalancer(seed=0).assign(["r1"], [])

    def test_stochastic_balancer_spreads_load(self):
        balancer = StochasticLoadBalancer(seed=0)
        regions = [f"r{i}" for i in range(6)]
        costs = {"r0": 100.0, "r1": 90.0, "r2": 10.0, "r3": 10.0, "r4": 5.0, "r5": 5.0}
        assignment = balancer.assign(regions, ["s1", "s2"], costs)
        # The two most expensive regions must not share a server.
        assert assignment["r0"] != assignment["r1"]

    def test_balancers_deterministic_with_seed(self):
        regions = [f"r{i}" for i in range(8)]
        servers = ["s1", "s2", "s3"]
        a = RandomBalancer(seed=42).assign(regions, servers)
        b = RandomBalancer(seed=42).assign(regions, servers)
        assert a == b


class TestMiniHBaseCluster:
    def test_create_table_pre_split(self, mini_cluster):
        regions = mini_cluster.master.table_regions("t")
        assert len(regions) == 3
        assert [r.start_key for r in regions] == ["", "g", "p"]

    def test_put_get_delete_roundtrip(self, mini_cluster):
        client = mini_cluster.client()
        client.put("t", "hello", "cf:v", b"world")
        assert client.get("t", "hello") == {"cf:v": b"world"}
        client.delete("t", "hello")
        assert client.get("t", "hello") == {}

    def test_put_row_and_scan(self, mini_cluster):
        client = mini_cluster.client()
        for key in ("a", "h", "q", "z"):
            client.put_row("t", key, {"cf:v": key})
        rows = client.scan("t", start_row="a", stop_row="z")
        assert [row for row, _ in rows] == ["a", "h", "q"]
        limited = client.scan("t", limit=2)
        assert len(limited) == 2

    def test_scan_spans_regions_in_order(self, mini_cluster):
        client = mini_cluster.client()
        keys = ["b", "f", "h", "k", "r", "w"]
        for key in keys:
            client.put("t", key, "cf:v", key)
        rows = [row for row, _ in client.scan("t", limit=100)]
        assert rows == sorted(keys)

    def test_read_modify_write(self, mini_cluster):
        client = mini_cluster.client()
        client.put("t", "counter", "cf:v", b"1")
        client.read_modify_write(
            "t", "counter", "cf:v", lambda v: str(int(v or b"0") + 1)
        )
        assert client.get("t", "counter")["cf:v"] == b"2"

    def test_unknown_table_raises(self, mini_cluster):
        with pytest.raises(NoSuchTableError):
            mini_cluster.master.table_regions("missing")

    def test_request_counters_exported(self, mini_cluster):
        client = mini_cluster.client()
        client.put("t", "a", "cf:v", b"1")
        client.get("t", "a")
        client.scan("t", limit=5)
        counters = mini_cluster.region_counters()
        assert sum(c["writes"] for c in counters.values()) >= 1
        assert sum(c["reads"] for c in counters.values()) >= 1
        assert sum(c["scans"] for c in counters.values()) >= 1

    def test_move_region(self, mini_cluster):
        region = mini_cluster.master.table_regions("t")[0]
        target = mini_cluster.regionservers()[-1]
        mini_cluster.master.move_region(region.name, target.name)
        assert mini_cluster.master.assignment[region.name] == target.name
        assert region.name in target.regions

    def test_move_unknown_region_raises(self, mini_cluster):
        with pytest.raises(NoSuchRegionError):
            mini_cluster.master.move_region("ghost", mini_cluster.regionservers()[0].name)

    def test_add_and_remove_regionserver(self, mini_cluster):
        new = mini_cluster.add_regionserver()
        assert new.name in mini_cluster.master.servers
        mini_cluster.remove_regionserver(new.name)
        assert new.name not in mini_cluster.master.servers
        with pytest.raises(NoSuchRegionServerError):
            mini_cluster.regionserver(new.name)

    def test_remove_regionserver_keeps_data_available(self, mini_cluster):
        client = mini_cluster.client()
        client.put("t", "a", "cf:v", b"1")
        victim = mini_cluster.master.assignment[
            mini_cluster.master.table_regions("t")[0].name
        ]
        mini_cluster.remove_regionserver(victim)
        assert client.get("t", "a") == {"cf:v": b"1"}

    def test_restart_with_new_config_preserves_data(self, mini_cluster):
        client = mini_cluster.client()
        client.put("t", "a", "cf:v", b"1")
        server = mini_cluster.regionservers()[0]
        new_config = NODE_PROFILES["read"].config
        mini_cluster.restart_regionserver(server.name, config=new_config, profile_name="read")
        assert server.config == new_config
        assert server.profile_name == "read"
        assert client.get("t", "a") == {"cf:v": b"1"}

    def test_flush_and_locality(self, mini_cluster):
        client = mini_cluster.client()
        for index in range(50):
            client.put("t", f"a{index:03d}", "cf:v", b"x" * 100)
        for server in mini_cluster.regionservers():
            for region in server.hosted_regions():
                server.flush_region(region)
        report = mini_cluster.locality_report()
        for server in mini_cluster.regionservers():
            if server.hosted_regions() and any(
                r.store_files for r in server.hosted_regions()
            ):
                assert report[server.name] == 1.0

    def test_major_compact_restores_locality_after_move(self, mini_cluster):
        client = mini_cluster.client()
        for index in range(60):
            client.put("t", f"a{index:03d}", "cf:v", b"x" * 200)
        source_name = mini_cluster.master.assignment[
            mini_cluster.master.table_regions("t")[0].name
        ]
        source = mini_cluster.regionserver(source_name)
        for region in source.hosted_regions():
            source.flush_region(region)
        region = mini_cluster.master.table_regions("t")[0]
        target = next(
            s for s in mini_cluster.regionservers() if s.name != source_name
        )
        mini_cluster.master.move_region(region.name, target.name)
        before = target.locality_index()
        mini_cluster.major_compact_server(target.name)
        after = target.locality_index()
        assert after >= before
        assert after == 1.0

    def test_memstore_flush_threshold_triggers_automatic_flush(self):
        config = RegionServerConfig(
            block_cache_fraction=0.2, memstore_fraction=0.05
        )
        cluster = MiniHBaseCluster(initial_servers=1, config=config, heap_bytes=200_000)
        cluster.create_table("small")
        client = cluster.client()
        for index in range(200):
            client.put("small", f"k{index:04d}", "cf:v", b"x" * 200)
        server = cluster.regionservers()[0]
        assert any(region.store_files for region in server.hosted_regions())

    def test_split_region(self):
        cluster = MiniHBaseCluster(initial_servers=1)
        cluster.create_table("s")
        client = cluster.client()
        for index in range(40):
            client.put("s", f"k{index:04d}", "cf:v", b"x" * 50)
        region = cluster.master.table_regions("s")[0]
        result = cluster.master.split_region(region.name)
        assert result is not None
        low, high = result
        assert low.end_key == high.start_key
        assert len(cluster.master.table_regions("s")) == 2
        # Data remains readable after the split.
        assert client.get("s", "k0001") == {"cf:v": b"x" * 50}
        assert client.get("s", "k0039") == {"cf:v": b"x" * 50}

    def test_cache_hit_ratio_improves_on_repeat_reads(self, mini_cluster):
        client = mini_cluster.client()
        for index in range(30):
            client.put("t", f"a{index:03d}", "cf:v", b"x" * 100)
        for server in mini_cluster.regionservers():
            for region in server.hosted_regions():
                server.flush_region(region)
        for _ in range(3):
            for index in range(30):
                client.get("t", f"a{index:03d}")
        stats = [s.cache_stats for s in mini_cluster.regionservers() if s.cache_stats.hits]
        assert stats
        assert all(s.hit_ratio > 0.3 for s in stats)
