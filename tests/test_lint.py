"""The determinism sentinel: static rules, pragmas, baseline, sanitizer.

The fixture corpus under ``tests/lint_corpus/`` encodes its own expected
findings as ``# expect: RULE`` end-of-line markers, so every corpus test
asserts the *exact* finding set -- a rule silently disabled (or firing
off-by-one) fails here, which is what makes the CI lint gate trustworthy.
"""

import random
import re
import time
from pathlib import Path

import pytest

from repro.analysis import (
    RULES,
    DeterminismViolation,
    guard,
    lint_repo,
    load_baseline,
)
from repro.analysis import sanitizer
from repro.analysis.__main__ import main as lint_main
from repro.analysis.engine import discover_files, lint_file
from repro.util.rng import make_rng
from repro.util.wallclock import wall_perf_counter, wall_time

REPO_ROOT = Path(__file__).resolve().parent.parent
CORPUS = REPO_ROOT / "tests" / "lint_corpus"
CORPUS_FILES = sorted(path.name for path in CORPUS.glob("*.py"))

EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>[A-Z]\d(?:\s*,\s*[A-Z]\d)*)")


def expected_findings(path: Path) -> list[tuple[int, str]]:
    expected: list[tuple[int, str]] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = EXPECT_RE.search(line)
        if match:
            for rule in re.split(r"\s*,\s*", match.group("rules")):
                expected.append((lineno, rule))
    return sorted(expected)


# --------------------------------------------------------------------------
# Corpus: exact findings per file (violations and false-positive guards)
# --------------------------------------------------------------------------

def test_corpus_is_nonempty():
    assert len(CORPUS_FILES) >= 12


@pytest.mark.parametrize("name", CORPUS_FILES)
def test_corpus_exact_findings(name):
    path = CORPUS / name
    got = sorted((finding.line, finding.rule) for finding in lint_file(path, REPO_ROOT))
    assert got == expected_findings(path), (
        f"{name}: findings diverge from its # expect: markers -- got {got}"
    )


@pytest.mark.parametrize(
    "rule_id", sorted({spec.rule_id for spec in RULES} | {"P1"})
)
def test_every_rule_fires_on_the_corpus(rule_id):
    """A silently disabled rule cannot pass: each must fire somewhere."""
    fired = {
        finding.rule
        for name in CORPUS_FILES
        for finding in lint_file(CORPUS / name, REPO_ROOT)
    }
    assert rule_id in fired


def test_corpus_is_excluded_from_default_discovery():
    files = discover_files(REPO_ROOT)
    assert files, "default discovery found nothing"
    assert not [path for path in files if "lint_corpus" in path.parts]


# --------------------------------------------------------------------------
# Pragmas
# --------------------------------------------------------------------------

def _lint_source(tmp_path: Path, source: str, rel: str = "src/mod.py"):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_file(path, tmp_path)


def test_def_scoped_pragma_covers_the_whole_body(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "\n"
        "# repro: allow(D2, reason=bench helper)\n"
        "def bench():\n"
        "    start = time.perf_counter()\n"
        "    return time.perf_counter() - start\n",
    )
    assert findings == []


def test_pragma_suppresses_only_its_own_rule(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "import json\n"
        "\n"
        "# repro: allow(D2, reason=bench helper)\n"
        "def bench(record):\n"
        "    start = time.perf_counter()\n"
        "    return json.dumps(record), start\n",
    )
    assert [(finding.rule, finding.line) for finding in findings] == [("D5", 7)]


def test_same_line_pragma(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "T = time.time()  # repro: allow(D2, reason=module bootstrap stamp)\n",
    )
    assert findings == []


def test_pragma_without_reason_is_a_finding_and_suppresses_nothing(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import time\n"
        "T = time.time()  # repro: allow(D2)\n",
    )
    assert sorted(finding.rule for finding in findings) == ["D2", "P1"]


# --------------------------------------------------------------------------
# Repo gate + baseline workflow
# --------------------------------------------------------------------------

def test_repo_is_lint_clean_against_the_committed_baseline():
    baseline = load_baseline(REPO_ROOT / "lint-baseline.txt")
    fresh = [
        finding for finding in lint_repo(REPO_ROOT) if finding.key not in baseline
    ]
    assert fresh == [], "\n".join(finding.render() for finding in fresh)


def test_committed_baseline_is_empty():
    # The acceptance bar: no grandfathered findings.  If this ever needs to
    # change, every new entry must be justified in-file instead.
    assert load_baseline(REPO_ROOT / "lint-baseline.txt") == set()


def test_cli_check_exits_zero_on_the_repo(capsys):
    assert lint_main(["--check"], root=REPO_ROOT) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_baseline_roundtrip(tmp_path, capsys):
    bad = tmp_path / "src" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\nx = random.random()\n")

    assert lint_main(["--check"], root=tmp_path) == 1
    out = capsys.readouterr().out
    assert "src/bad.py:2:D1" in out

    assert lint_main(["--update-baseline"], root=tmp_path) == 0
    capsys.readouterr()
    assert lint_main(["--check"], root=tmp_path) == 0

    bad.write_text("import random\nx = random.Random(7).random()\n")
    assert lint_main(["--check"], root=tmp_path) == 0  # stale entry: note, not failure


# --------------------------------------------------------------------------
# Runtime sanitizer
# --------------------------------------------------------------------------

def test_guard_raises_on_wall_clock():
    with guard():
        with pytest.raises(DeterminismViolation):
            time.time()
        with pytest.raises(DeterminismViolation):
            time.perf_counter()


def test_guard_raises_on_global_rng():
    with guard():
        with pytest.raises(DeterminismViolation):
            random.random()  # repro: allow(D1, reason=proves the sanitizer blocks exactly this call)
        with pytest.raises(DeterminismViolation):
            random.shuffle([1, 2, 3])  # repro: allow(D1, reason=proves the sanitizer blocks exactly this call)


def test_guard_keeps_the_deterministic_doors_open():
    with guard():
        rng = make_rng(7)
        assert 0.0 <= rng.random() < 1.0  # seeded instances keep working
        assert wall_perf_counter() > 0.0  # the audited measurement door
        assert wall_time() > 0.0
        assert time.monotonic() > 0.0  # stdlib pool machinery depends on it


def test_guard_nests_and_restores():
    original_time = time.time
    with guard():
        with guard():
            assert sanitizer.guard_active()
        # Inner exit must not unpatch while the outer guard is live.
        with pytest.raises(DeterminismViolation):
            time.time()
    assert not sanitizer.guard_active()
    assert time.time is original_time
    assert time.time() > 0.0


def test_violation_message_names_the_call_and_the_remedy():
    with guard():
        with pytest.raises(DeterminismViolation, match=r"time\.time\(\).*wallclock"):
            time.time()
        with pytest.raises(DeterminismViolation, match=r"random\.choice\(\).*make_rng"):
            random.choice([1, 2])  # repro: allow(D1, reason=proves the sanitizer blocks exactly this call)
