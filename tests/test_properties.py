"""Property-based tests (hypothesis) for the core algorithms and substrates."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.assignment import assign_partitions, makespan
from repro.core.classification import AccessPattern, ClassifiedPartition, classify_partition
from repro.core.grouping import nodes_per_group
from repro.core.output import TargetSlot, compute_output
from repro.core.sizing import SizingAlgorithm
from repro.hbase.region import Region
from repro.hbase.storefile import StoreFile
from repro.hbase.table import Cell, HTableDescriptor
from repro.monitoring.smoothing import ExponentialSmoother
from repro.workloads.ycsb.distributions import (
    HotspotChooser,
    UniformChooser,
    ZipfianChooser,
    partition_request_shares,
)
from repro.workloads.ycsb.workloads import hotspot_partition_weights

requests = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(reads=requests, writes=requests, scans=requests)
def test_classification_is_total_and_consistent(reads, writes, scans):
    """Every partition gets exactly one group, consistent with its dominant op."""
    pattern = classify_partition(reads, writes, scans)
    assert pattern in AccessPattern
    total = reads + writes + scans
    if total > 0:
        if writes / total > 0.6:
            assert pattern is AccessPattern.WRITE
        if reads / total > 0.6 and scans == 0:
            assert pattern is AccessPattern.READ


@given(
    costs=st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=60),
    node_count=st.integers(min_value=1, max_value=10),
)
def test_lpt_assignment_is_complete_and_reasonably_balanced(costs, node_count):
    """LPT assigns every partition exactly once and is within 2x of the mean load."""
    partitions = [
        ClassifiedPartition(f"p{i}", AccessPattern.READ, cost, 1e8)
        for i, cost in enumerate(costs)
    ]
    nodes = [f"n{i}" for i in range(node_count)]
    assignment = assign_partitions(partitions, nodes)
    assigned = sorted(p for parts in assignment.values() for p in parts)
    assert assigned == sorted(p.partition_id for p in partitions)
    cost_map = {p.partition_id: p.requests for p in partitions}
    total = sum(cost_map.values())
    if total > 0 and node_count <= len(costs):
        # Graham's bound: the makespan of LPT is at most (4/3 - 1/3m) * OPT;
        # the mean load is a lower bound for OPT, and every schedule's
        # makespan is also bounded below by the largest single job.
        bound = max(total / node_count, max(cost_map.values())) * 2.0
        assert makespan(assignment, cost_map) <= bound + 1e-6


@given(
    group_sizes=st.dictionaries(
        st.sampled_from(list(AccessPattern)),
        st.integers(min_value=1, max_value=30),
        min_size=1,
        max_size=4,
    ),
    total_nodes=st.integers(min_value=1, max_value=40),
)
def test_grouping_conserves_nodes(group_sizes, total_nodes):
    """Node allocation sums to the available nodes and never exceeds them."""
    groups = {
        pattern: [
            ClassifiedPartition(f"{pattern.value}-{i}", pattern, 10.0, 1e8)
            for i in range(size)
        ]
        for pattern, size in group_sizes.items()
    }
    allocation = nodes_per_group(groups, total_nodes)
    assert sum(allocation.values()) <= total_nodes
    if total_nodes >= len(groups):
        assert sum(allocation.values()) == total_nodes
        assert all(count >= 1 for count in allocation.values())


@given(
    partition_count=st.integers(min_value=1, max_value=30),
    node_count=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=100),
)
def test_output_computation_assigns_each_slot_once(partition_count, node_count, seed):
    """Stage D hands every target slot to exactly one node."""
    import random

    rng = random.Random(seed)
    partitions = [f"p{i}" for i in range(partition_count)]
    current_state = {
        f"n{i}": {p for p in partitions if rng.randrange(node_count) == i}
        for i in range(node_count)
    }
    current_profiles = {node: "default" for node in current_state}
    slot_count = max(1, min(node_count, partition_count))
    slots = [
        TargetSlot(
            profile="read",
            partitions=frozenset(partitions[i::slot_count]),
        )
        for i in range(slot_count)
    ]
    targets = compute_output(current_state, current_profiles, slots)
    assert len(targets) == len(slots)
    assert len({t.node for t in targets}) == len(targets)
    covered = set()
    for target in targets:
        covered |= target.partitions
    assert covered == set(partitions)


@given(st.lists(st.booleans(), min_size=1, max_size=30))
def test_sizing_algorithm_never_removes_more_than_one(decisions):
    """Algorithm 1 removes at most one node per iteration and adds powers of two."""
    algorithm = SizingAlgorithm()
    for remove in decisions:
        outcome = algorithm.decide(0.3 if remove else 0.9, remove=remove)
        assert outcome.delta >= -1
        if outcome.delta > 0:
            assert outcome.delta & (outcome.delta - 1) == 0  # power of two


@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=20))
def test_smoothed_value_stays_within_observed_range(values):
    """Exponential smoothing never leaves the observed value range."""
    smoother = ExponentialSmoother(window=len(values))
    for value in values:
        smoother.observe(value)
    assert min(values) - 1e-9 <= smoother.value() <= max(values) + 1e-9


@given(st.integers(min_value=1, max_value=32))
def test_hotspot_weights_are_a_distribution(partitions):
    """Per-partition request shares are non-negative and sum to one."""
    weights = hotspot_partition_weights(partitions)
    assert len(weights) == partitions
    assert all(w >= 0 for w in weights)
    assert abs(sum(weights) - 1.0) < 1e-9


# --------------------------------------------------------------------- #
# key distributions: ZipfianChooser.extend and partition_request_shares
# --------------------------------------------------------------------- #

seeds = st.integers(min_value=0, max_value=2**16)


@given(
    record_count=st.integers(min_value=2, max_value=4000),
    growth=st.integers(min_value=1, max_value=4000),
    theta=st.floats(min_value=0.3, max_value=0.99),
    seed=seeds,
)
@settings(max_examples=60)
def test_zipfian_extend_matches_fresh_chooser(record_count, growth, theta, seed):
    """Incremental zetan growth equals a from-scratch chooser's state."""
    extended = ZipfianChooser(record_count, theta=theta, seed=seed)
    extended.extend(record_count + growth)
    fresh = ZipfianChooser(record_count + growth, theta=theta, seed=seed)
    assert extended.record_count == fresh.record_count
    assert extended._zetan == pytest.approx(fresh._zetan, rel=1e-9)
    assert extended._eta == pytest.approx(fresh._eta, rel=1e-9)
    for _ in range(20):
        index = extended.next_index()
        assert 0 <= index < record_count + growth


@given(
    record_count=st.integers(min_value=2, max_value=1000),
    growths=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=8),
    seed=seeds,
)
@settings(max_examples=60)
def test_zipfian_state_is_monotone_under_key_space_growth(record_count, growths, seed):
    """Growing the key space only ever grows the harmonic sum; shrinking is a no-op."""
    chooser = ZipfianChooser(record_count, seed=seed)
    previous_zetan = chooser._zetan
    previous_count = chooser.record_count
    for growth in growths:
        chooser.extend(chooser.record_count + growth)
        assert chooser.record_count == previous_count + growth
        if growth > 0:
            assert chooser._zetan > previous_zetan
        else:
            assert chooser._zetan == previous_zetan
        previous_zetan = chooser._zetan
        previous_count = chooser.record_count
    # extend() never shrinks.
    chooser.extend(1)
    assert chooser.record_count == previous_count
    assert chooser._zetan == previous_zetan


@given(
    record_count=st.integers(min_value=8, max_value=50_000),
    partitions=st.integers(min_value=1, max_value=12),
    seed=seeds,
)
@settings(max_examples=60)
def test_partition_shares_are_a_distribution(record_count, partitions, seed):
    """Shares are non-negative and sum to 1 for every chooser family."""
    for factory in (UniformChooser, HotspotChooser, ZipfianChooser):
        shares = partition_request_shares(
            factory, record_count, partitions, samples=400, seed=seed
        )
        assert len(shares) == partitions
        assert all(share >= 0.0 for share in shares)
        assert sum(shares) == pytest.approx(1.0, abs=1e-9)


class _SampledUniform(UniformChooser):
    """Defeats the exact-type check so the sampling fallback runs."""


class _SampledHotspot(HotspotChooser):
    """Defeats the exact-type check so the sampling fallback runs."""


@given(
    record_count=st.integers(min_value=50, max_value=20_000),
    partitions=st.integers(min_value=1, max_value=8),
    seed=seeds,
)
@settings(max_examples=25, deadline=None)
def test_closed_form_shares_match_reference_sampling(record_count, partitions, seed):
    """The analytic uniform/hotspot shares agree with drawn-key estimates."""
    for analytic_factory, sampled_factory in (
        (UniformChooser, _SampledUniform),
        (HotspotChooser, _SampledHotspot),
    ):
        analytic = partition_request_shares(
            analytic_factory, record_count, partitions, seed=seed
        )
        sampled = partition_request_shares(
            sampled_factory, record_count, partitions, samples=8000, seed=seed
        )
        for expected, estimate in zip(analytic, sampled):
            assert estimate == pytest.approx(expected, abs=0.03)


@given(
    record_count=st.integers(min_value=100, max_value=20_000),
    scale=st.integers(min_value=2, max_value=50),
    partitions=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40)
def test_hotspot_shares_scale_free_under_key_space_growth(record_count, scale, partitions):
    """Growing the key space keeps the hotspot split (the 34/26/20/20 shape).

    The hot set is a *fraction* of the key space, so scaling the record
    count must not move the per-partition shares beyond boundary rounding.
    """
    small = partition_request_shares(HotspotChooser, record_count, partitions)
    large = partition_request_shares(HotspotChooser, record_count * scale, partitions)
    for a, b in zip(small, large):
        assert b == pytest.approx(a, abs=2.0 * partitions / record_count + 1e-9)


row_keys = st.text(alphabet="abcdefghij", min_size=1, max_size=6)


@given(st.dictionaries(row_keys, st.binary(min_size=1, max_size=20), min_size=1, max_size=30))
@settings(max_examples=50)
def test_region_read_your_writes(rows):
    """Whatever is put into a region is readable back (read-your-writes)."""
    # The substrate reserves one sentinel byte string for delete markers
    # (as HBase reserves delete-type KeyValues); user values never use it.
    from repro.hbase.region import TOMBSTONE

    assume(all(value != TOMBSTONE for value in rows.values()))
    table = HTableDescriptor(name="t", column_families=("cf",))
    region = Region(table)
    for row, value in rows.items():
        region.put(row, "cf:v", value)
    for row, value in rows.items():
        assert region.read_row(row, lambda *_: None)["cf:v"] == value


@given(
    st.dictionaries(row_keys, st.binary(min_size=1, max_size=20), min_size=1, max_size=30),
    st.integers(min_value=64, max_value=4096),
)
@settings(max_examples=50)
def test_storefile_blocks_partition_rows(rows, block_size):
    """Store-file blocks cover every row exactly once, in sorted order."""
    cells = [Cell(row=row, column="cf:v", timestamp=1, value=value) for row, value in rows.items()]
    store = StoreFile("/f", cells, block_size_bytes=block_size)
    covered = [row for block in store.blocks for row in block.rows]
    assert covered == sorted(rows)
    for row in rows:
        block = store.block_for_row(row)
        assert block is not None
        assert row in block.rows
