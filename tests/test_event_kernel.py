"""Event-kernel regressions: event queue, dirty flags, fast-forward fidelity.

Three layers of guarantees:

* :class:`EventLoop` / :class:`KernelStats` unit behaviour;
* *conservative quiescence*: every simulator mutation forces a real solve
  on the next tick (the dirty-flag inventory in PERFORMANCE.md);
* *fast-forward fidelity*: a stretch covered by macro-ticks produces
  byte-identical metric series, samples and machine-minutes to the same
  stretch simulated tick by tick -- at the simulator level and through the
  experiment harness (skipped intervals must not drop, duplicate or shift
  samples).
"""

import math
import warnings

import pytest

from repro.elasticity.daemon import HBaseBalancerDaemon
from repro.experiments.harness import ExperimentHarness, make_backend
from repro.scenarios.schedule import EventSchedule, ScheduledAction
from repro.simulation.cluster import ClusterSimulator
from repro.simulation.events import EventLoop, KernelStats
from repro.simulation.workload import WorkloadBinding


def build_steady(kernel: str, nodes: int = 4, regions: int = 12) -> ClusterSimulator:
    """Insert-free multi-region cluster: quiescent once the loop settles."""
    sim = ClusterSimulator(kernel=kernel, tick_seconds=5.0)
    names = [sim.add_node() for _ in range(nodes)]
    for index in range(regions):
        sim.add_region(f"r{index}", "tenant", 5e8, node=names[index % nodes])
    weight = 1.0 / regions
    weights = {f"r{index}": weight for index in range(regions)}
    weights[f"r{regions - 1}"] = 1.0 - weight * (regions - 1)
    sim.attach_workload(
        WorkloadBinding(
            name="tenant",
            threads=40,
            op_mix={"read": 0.7, "update": 0.3},
            region_weights=weights,
        )
    )
    return sim


def assert_identical_metrics(left: ClusterSimulator, right: ClusterSimulator) -> None:
    """Every metric series must agree sample for sample, bit for bit."""
    left_keys = {key for key, _ in left.metrics.items()}
    right_keys = {key for key, _ in right.metrics.items()}
    assert left_keys == right_keys
    for key, series in right.metrics.items():
        twin = left.metrics.series(*key)
        assert twin.timestamps == series.timestamps, f"timestamps differ for {key}"
        assert twin.values == series.values, f"values differ for {key}"


class TestEventLoop:
    def test_pops_earliest_first(self):
        loop = EventLoop()
        loop.schedule(30.0, "b")
        loop.schedule(10.0, "a")
        loop.schedule(20.0, "c")
        assert [loop.pop().kind for _ in range(3)] == ["a", "c", "b"]
        assert loop.pop() is None

    def test_ties_break_by_insertion_order(self):
        loop = EventLoop()
        loop.schedule(10.0, "first")
        loop.schedule(10.0, "second")
        assert loop.pop().kind == "first"
        assert loop.pop().kind == "second"

    def test_horizon_prunes_stale_events(self):
        loop = EventLoop()
        loop.schedule(10.0, "stale")
        loop.schedule(20.0, "live")
        horizon = loop.horizon(0.0, stale=lambda event: event.kind == "stale")
        assert horizon == 20.0
        assert len(loop) == 1

    def test_horizon_returns_now_when_event_due(self):
        loop = EventLoop()
        loop.schedule(5.0, "due")
        assert loop.horizon(5.0, stale=lambda event: False) == 5.0

    def test_horizon_infinite_when_drained(self):
        loop = EventLoop()
        assert loop.horizon(0.0, stale=lambda event: False) == float("inf")


class TestKernelStats:
    def test_steady_fraction(self):
        stats = KernelStats(ticks=10, solves=2)
        assert stats.steady_fraction == pytest.approx(0.8)
        assert KernelStats().steady_fraction == 0.0

    def test_reset(self):
        stats = KernelStats(ticks=5, solves=5, skipped_ticks=3, macro_batches=1)
        stats.extra["note"] = 1
        stats.reset()
        assert stats == KernelStats()


class TestSolutionReuse:
    def test_steady_cluster_stops_solving(self):
        sim = build_steady("event")
        for _ in range(10):
            sim.tick()
        # The closed loop needs a couple of ticks to become tick-stable;
        # after that every tick replays the cached fixed point.
        assert sim.stats.solves <= 3
        assert sim.stats.reused_ticks >= 7

    def test_insert_traffic_blocks_reuse(self):
        sim = build_steady("event")
        sim.attach_workload(
            WorkloadBinding(
                name="grower",
                threads=10,
                op_mix={"read": 0.5, "insert": 0.5},
                region_weights={"r0": 1.0},
            )
        )
        for _ in range(10):
            sim.tick()
        # Inserts grow region sizes every tick: data growth is a permanent
        # dirty flag, so every tick is a real solve.
        assert sim.stats.solves == sim.stats.ticks

    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(lambda sim: sim.set_workload_active("tenant", False), id="set_workload_active"),
            pytest.param(lambda sim: sim.update_workload("tenant", threads=60), id="update_workload"),
            pytest.param(lambda sim: sim.notify_workload_changed(), id="notify_workload_changed"),
            pytest.param(lambda sim: sim.detach_workload("tenant"), id="detach_workload"),
            pytest.param(lambda sim: sim.move_region("r0", "rs-2"), id="move_region"),
            pytest.param(lambda sim: sim.add_node(), id="add_node"),
            pytest.param(lambda sim: sim.remove_node("rs-4"), id="remove_node"),
            pytest.param(lambda sim: sim.degrade_node("rs-1", disk=0.5), id="degrade_node"),
            pytest.param(lambda sim: sim.invalidate_solution(), id="invalidate_solution"),
            pytest.param(
                lambda sim: setattr(sim.regions["r0"], "block_homes", {"rs-1", "rs-2"}),
                id="direct_block_homes_write",
            ),
            pytest.param(
                lambda sim: setattr(sim.regions["r0"], "node", "rs-2"),
                id="direct_node_write",
            ),
        ],
    )
    def test_mutation_forces_resolve(self, mutate):
        sim = build_steady("event")
        for _ in range(5):
            sim.tick()
        settled = sim.stats.solves
        sim.tick()
        assert sim.stats.solves == settled, "steady tick should reuse, not solve"
        mutate(sim)
        sim.tick()
        assert sim.stats.solves == settled + 1, (
            "mutation must dirty the cached solution and force a real solve"
        )


class TestMacroTickEquivalence:
    """Satellite regression: skipped stretches sample identically.

    A fast-forwarded interval must yield the same per-tick metric series --
    same sample count, same timestamps, same values -- as the interval
    simulated tick by tick.  This is what makes every downstream per-minute
    window (harness samples, SLO verdicts) immune to how time advanced.
    """

    def test_run_equals_tick_by_tick(self):
        fast_forwarded = build_steady("event")
        fast_forwarded.run(1800.0)
        assert fast_forwarded.stats.skipped_ticks > 300, "fast-forward never engaged"

        tick_by_tick = build_steady("event")
        for _ in range(360):
            tick_by_tick.tick()
        assert tick_by_tick.stats.skipped_ticks == 0

        assert_identical_metrics(fast_forwarded, tick_by_tick)
        assert fast_forwarded.clock.now == tick_by_tick.clock.now
        assert fast_forwarded.clock.ticks_elapsed == tick_by_tick.clock.ticks_elapsed
        # Cumulative op counters use a fused rate*dt*ticks product; the
        # difference to per-tick accumulation is pure float rounding.
        assert fast_forwarded.total_ops == pytest.approx(
            tick_by_tick.total_ops, rel=1e-9
        )

    def test_event_kernel_matches_fast_kernel(self):
        event = build_steady("event")
        event.run(1800.0)
        fast = build_steady("fast")
        fast.run(1800.0)
        assert event.binding_throughput("tenant") == pytest.approx(
            fast.binding_throughput("tenant"), rel=1e-9
        )
        assert event.total_ops == pytest.approx(fast.total_ops, rel=1e-9)

    def test_quiescent_ticks_zero_on_fast_kernel(self):
        sim = build_steady("fast")
        for _ in range(5):
            sim.tick()
        assert sim.quiescent_ticks(100) == 0

    def test_quiescent_ticks_zero_after_mutation(self):
        sim = build_steady("event")
        for _ in range(5):
            sim.tick()
        assert sim.quiescent_ticks(100) > 0
        sim.update_workload("tenant", threads=55)
        assert sim.quiescent_ticks(100) == 0


class _OpaqueController:
    """A controller without ``next_wakeup``: disables harness skipping."""

    def step(self, now: float) -> None:  # pragma: no cover - trivially inert
        pass


def _build_harness(kernel: str, opaque: bool = False, daemon_period: float | None = None):
    sim = build_steady(kernel, nodes=5, regions=15)
    harness = ExperimentHarness(sim, name=kernel, sample_every_seconds=60.0)
    if opaque:
        harness.add_controller(_OpaqueController())
    if daemon_period is not None:
        harness.add_controller(
            HBaseBalancerDaemon(make_backend(sim), period_seconds=daemon_period)
        )
    return harness, sim


def _schedule_for(sim: ClusterSimulator) -> EventSchedule:
    """One mid-run workload bump at a time not on the tick grid."""
    return EventSchedule(
        [
            ScheduledAction(
                time_seconds=777.0,
                label="bump",
                apply=lambda: sim.update_workload("tenant", threads=70) or "threads=70",
                annotate=True,
            )
        ]
    )


def _assert_runs_identical(left, right) -> None:
    assert len(left.series) == len(right.series)
    for a, b in zip(left.series, right.series):
        assert a.minute == b.minute
        assert a.nodes == b.nodes
        assert a.throughput == pytest.approx(b.throughput, rel=1e-9, abs=1e-9)
        assert a.cumulative_ops == pytest.approx(b.cumulative_ops, rel=1e-9)
    assert set(left.tenant_series) == set(right.tenant_series)
    for name, points in right.tenant_series.items():
        twins = left.tenant_series[name]
        assert len(twins) == len(points)
        for a, b in zip(twins, points):
            assert a.minute == b.minute
            assert a.throughput == pytest.approx(b.throughput, rel=1e-9, abs=1e-9)
            assert a.latency_ms == pytest.approx(b.latency_ms, rel=1e-9, abs=1e-9)
    assert [(a.minute, a.label) for a in left.annotations] == [
        (b.minute, b.label) for b in right.annotations
    ]
    assert left.machine_minutes == pytest.approx(right.machine_minutes, rel=1e-12)


class TestHarnessFastForward:
    def test_skipped_run_samples_identically(self):
        """The satellite fix: skipping must not drop or duplicate samples."""
        skipping, skip_sim = _build_harness("event")
        skipped = skipping.run_for(1800.0, schedule=_schedule_for(skip_sim))
        assert skip_sim.stats.skipped_ticks > 200, "fast-forward never engaged"

        ticking, tick_sim = _build_harness("event", opaque=True)
        with pytest.warns(RuntimeWarning, match="quiescence skipping disabled"):
            ticked = ticking.run_for(1800.0, schedule=_schedule_for(tick_sim))
        assert tick_sim.stats.skipped_ticks == 0, (
            "a controller without next_wakeup must disable skipping"
        )

        assert_identical_metrics(skip_sim, tick_sim)
        _assert_runs_identical(skipped, ticked)

    def test_event_kernel_run_matches_fast_kernel_run(self):
        event_harness, event_sim = _build_harness("event")
        event_run = event_harness.run_for(1800.0, schedule=_schedule_for(event_sim))
        fast_harness, fast_sim = _build_harness("fast")
        fast_run = fast_harness.run_for(1800.0, schedule=_schedule_for(fast_sim))
        assert event_sim.stats.skipped_ticks > 0
        _assert_runs_identical(event_run, fast_run)

    def test_controller_boundary_misaligned_with_sampling(self):
        """45 s controller wakes vs 60 s samples vs 5 s ticks.

        The wake instants (45, 90, 135, ...) interleave with the sampling
        boundaries (60, 120, ...), coinciding only at multiples of 180 s;
        skip planning must honour both cadences independently.
        """
        event_harness, event_sim = _build_harness("event", daemon_period=45.0)
        event_run = event_harness.run_for(1800.0)
        fast_harness, fast_sim = _build_harness("fast", daemon_period=45.0)
        fast_run = fast_harness.run_for(1800.0)
        assert event_sim.stats.skipped_ticks > 0, (
            "skipping should engage between controller wakes"
        )
        _assert_runs_identical(event_run, fast_run)
        assert_identical_metrics(event_sim, fast_sim)


class TestSkipEligibility:
    """Satellite fix: a silently disabled fast-forward path is now loud.

    ``run_for`` records *whether* quiescence skipping was active and, when
    not, *why* -- on the run and on ``KernelStats.extra`` -- so a campaign
    can assert the event-kernel speedup actually engaged instead of
    discovering a 10x slowdown in wall-clock graphs.
    """

    def test_opaque_controller_warns_and_records_reason(self):
        harness, sim = _build_harness("event", opaque=True)
        with pytest.warns(RuntimeWarning, match="quiescence skipping disabled"):
            run = harness.run_for(600.0)
        assert run.skip_active is False
        assert "_OpaqueController" in run.skip_disabled_reason
        assert "next_wakeup" in run.skip_disabled_reason
        assert sim.stats.extra["skip_disabled_reason"] == run.skip_disabled_reason
        assert sim.stats.skipped_ticks == 0

    def test_standard_controllers_keep_skipping_active(self):
        harness, sim = _build_harness("event", daemon_period=45.0)
        run = harness.run_for(600.0)
        assert run.skip_active is True
        assert run.skip_disabled_reason == ""
        assert sim.stats.extra["skip_disabled_reason"] == ""

    def test_non_event_kernel_records_reason_without_warning(self):
        harness, sim = _build_harness("fast")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning would fail the test
            run = harness.run_for(600.0)
        assert run.skip_active is False
        assert "fast" in run.skip_disabled_reason
        assert sim.stats.extra["skip_disabled_reason"] == run.skip_disabled_reason
