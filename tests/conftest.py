"""Shared fixtures for the test suite."""

import pytest

from repro.analysis import sanitizer
from repro.hbase.cluster import MiniHBaseCluster
from repro.simulation.cluster import ClusterSimulator
from repro.workloads.ycsb.scenario import build_paper_scenario


@pytest.fixture
def determinism_guard():
    """Run the test under the runtime determinism sanitizer.

    Inside the scope, wall-clock reads (``time.time``/``perf_counter``/...)
    and global-RNG draws (``random.random``/``shuffle``/...) raise
    :class:`repro.analysis.sanitizer.DeterminismViolation`.  Seeded
    ``random.Random`` instances and ``repro.util.wallclock`` keep working.
    The golden and campaign suites opt in module-wide via an autouse
    fixture; any determinism-sensitive test can request this directly.
    """
    with sanitizer.guard():
        yield


@pytest.fixture
def simulator() -> ClusterSimulator:
    """A small simulated cluster with three online nodes."""
    sim = ClusterSimulator()
    for _ in range(3):
        sim.add_node()
    return sim


@pytest.fixture
def paper_simulator() -> ClusterSimulator:
    """A 5-node simulator with the paper's six-tenant YCSB scenario attached."""
    sim = ClusterSimulator()
    nodes = [sim.add_node() for _ in range(5)]
    scenario = build_paper_scenario(sim)
    # Spread partitions round-robin and make them local so ticks can run.
    for index, spec in enumerate(scenario.partitions):
        node = nodes[index % len(nodes)]
        region = sim.regions[spec.partition_id]
        region.node = node
        region.block_homes = {node}
    sim.paper_scenario = scenario
    return sim


@pytest.fixture
def mini_cluster() -> MiniHBaseCluster:
    """A functional mini-HBase cluster with three RegionServers and a table."""
    cluster = MiniHBaseCluster(initial_servers=3)
    cluster.create_table("t", split_keys=["g", "p"])
    return cluster
