"""Property tests for the mergeable latency distribution summary.

The percentile pipeline rests on four algebraic guarantees of
:class:`~repro.simulation.latency.LatencySummary`, and each is pinned here
with hypothesis over adversarial value/weight mixes:

* merge is **order-invariant**: associative and commutative bit-exactly
  (integer counts, so no float accumulation order can leak through);
* ``quantile`` is **monotone in rank**;
* ``quantile`` has **rank error <= one bin width**: the true rank-``q``
  atom lies inside the returned bin;
* ``scale(k)`` is **bit-identical to k-fold self-merge** -- the identity
  the event kernel's macro-tick fast-forward relies on for byte-identical
  quiescence skipping.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.simulation.latency import (  # noqa: E402
    BINS_PER_DECADE,
    MAX_BIN_INDEX,
    WEIGHT_SCALE,
    LatencySummary,
    bin_index,
    bin_value_ms,
    quantise_weight,
)

# Latencies spanning well past both clamp edges (bins cover 1e-3..1e6 ms).
latencies = st.floats(min_value=1e-5, max_value=1e8, allow_nan=False, allow_infinity=False)
weights = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False, allow_infinity=False)
atoms = st.lists(st.tuples(latencies, weights), min_size=1, max_size=60)


def summary_of(recorded):
    out = LatencySummary()
    for value, weight in recorded:
        out.record(value, weight)
    return out


class TestBins:
    @given(latencies)
    def test_bin_index_is_clamped_and_midpoint_round_trips(self, value):
        index = bin_index(value)
        assert 0 <= index <= MAX_BIN_INDEX
        # The representative value maps back into its own bin.
        assert bin_index(bin_value_ms(index)) == index

    @given(latencies, latencies)
    def test_bin_index_is_monotone(self, a, b):
        if a <= b:
            assert bin_index(a) <= bin_index(b)

    @given(weights)
    def test_positive_weights_never_vanish(self, weight):
        assert quantise_weight(weight) >= 1

    def test_zero_and_negative_weights_drop(self):
        assert quantise_weight(0.0) == 0
        assert quantise_weight(-1.0) == 0


class TestMergeAlgebra:
    @given(atoms, atoms, atoms)
    @settings(max_examples=60)
    def test_merge_is_associative_and_commutative_bit_exactly(self, a, b, c):
        x, y, z = summary_of(a), summary_of(b), summary_of(c)
        left = x.copy().merge(y.copy().merge(z.copy()))
        right = x.copy().merge(y.copy()).merge(z.copy())
        swapped = z.copy().merge(y.copy()).merge(x.copy())
        # Bit-exact: integer-count dict equality, not approximate.
        assert left.counts == right.counts == swapped.counts
        assert LatencySummary.merged([x, y, z]).counts == left.counts

    @given(atoms)
    def test_merge_with_empty_is_identity(self, a):
        x = summary_of(a)
        assert x.copy().merge(LatencySummary()).counts == x.counts
        assert LatencySummary().merge(x).counts == x.counts

    @given(atoms, st.integers(min_value=0, max_value=7))
    @settings(max_examples=60)
    def test_scale_equals_k_fold_self_merge(self, a, k):
        x = summary_of(a)
        folded = LatencySummary.merged(x for _ in range(k))
        assert x.scale(k).counts == folded.counts

    def test_scale_rejects_non_integer_factors(self):
        with pytest.raises(ValueError, match="non-negative int"):
            LatencySummary().scale(1.5)
        with pytest.raises(ValueError, match="non-negative int"):
            LatencySummary().scale(-1)


class TestQuantiles:
    @given(atoms, st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_quantile_is_monotone_in_rank(self, a, q1, q2):
        x = summary_of(a)
        lo, hi = sorted((q1, q2))
        assert x.quantile(lo) <= x.quantile(hi)

    @given(st.lists(latencies, min_size=1, max_size=60), st.floats(min_value=1e-6, max_value=1.0))
    @settings(max_examples=60)
    def test_rank_error_is_at_most_one_bin(self, values, q):
        # Unit weights quantise to equal counts, so the summary's rank walk
        # and a direct walk over the sorted raw values agree on which atom
        # holds rank q; the summary must return that atom's own bin.
        x = LatencySummary()
        for value in values:
            x.record(value)
        target = q * len(values) * WEIGHT_SCALE
        cumulative = 0
        true_atom = max(values)
        for value in sorted(values, key=bin_index):
            cumulative += WEIGHT_SCALE
            if cumulative >= target:
                true_atom = value
                break
        observed = x.quantile(q)
        assert bin_index(observed) == bin_index(true_atom)
        # ... which bounds the log-space error by one bin width.
        if bin_index(true_atom) not in (0, MAX_BIN_INDEX):
            assert abs(math.log10(observed) - math.log10(true_atom)) <= 1.0 / BINS_PER_DECADE

    @given(atoms)
    def test_quantile_extremes_hit_the_occupied_bins(self, a):
        x = summary_of(a)
        assert x.quantile(0.0) == bin_value_ms(min(x.counts))
        assert x.quantile(1.0) == bin_value_ms(max(x.counts))

    def test_empty_summary_quantile_is_zero(self):
        assert LatencySummary().quantile(0.5) == 0.0


class TestSerialisation:
    @given(atoms)
    def test_to_pairs_round_trips_bit_exactly(self, a):
        x = summary_of(a)
        assert LatencySummary.from_pairs(x.to_pairs()).counts == x.counts

    @given(atoms)
    def test_pairs_are_sorted_and_sparse(self, a):
        pairs = summary_of(a).to_pairs()
        assert pairs == sorted(pairs)
        assert all(count > 0 for _, count in pairs)
