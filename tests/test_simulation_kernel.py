"""Unit tests for the simulation kernel: clock, hardware, metrics, workload bindings."""

import pytest

from repro.simulation.clock import ClockError, SimulationClock
from repro.simulation.hardware import GB, LARGE_NODE, PAPER_NODE, HardwareSpec
from repro.simulation.metrics import MetricSeries, MetricsRegistry
from repro.simulation.workload import CLIENT_OVERHEAD_MS, OfferedLoad, WorkloadBinding


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_advance_moves_forward(self):
        clock = SimulationClock()
        assert clock.advance(10.0) == 10.0
        assert clock.now == 10.0

    def test_tick_uses_default_size(self):
        clock = SimulationClock(tick_seconds=2.5)
        clock.tick()
        clock.tick()
        assert clock.now == pytest.approx(5.0)
        assert clock.ticks_elapsed == 2

    def test_minutes_property(self):
        clock = SimulationClock()
        clock.advance(90.0)
        assert clock.minutes == pytest.approx(1.5)

    def test_negative_advance_rejected(self):
        with pytest.raises(ClockError):
            SimulationClock().advance(-1.0)

    def test_zero_advance_rejected(self):
        with pytest.raises(ClockError):
            SimulationClock().advance(0.0)

    def test_reset(self):
        clock = SimulationClock()
        clock.advance(5.0)
        clock.reset()
        assert clock.now == 0.0
        assert clock.ticks_elapsed == 0


class TestHardwareSpec:
    def test_paper_node_is_valid(self):
        PAPER_NODE.validate()

    def test_large_node_is_valid(self):
        LARGE_NODE.validate()

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            HardwareSpec(cpu_millis_per_second=0).validate()

    def test_rejects_heap_larger_than_memory(self):
        with pytest.raises(ValueError):
            HardwareSpec(memory_bytes=2 * GB, heap_bytes=3 * GB).validate()

    def test_default_heap_fits_in_memory(self):
        spec = HardwareSpec()
        assert spec.heap_bytes <= spec.memory_bytes


class TestMetricSeries:
    def test_record_and_latest(self):
        series = MetricSeries("cpu")
        series.record(1.0, 0.5)
        series.record(2.0, 0.7)
        assert series.latest() == 0.7
        assert len(series) == 2

    def test_latest_default_when_empty(self):
        assert MetricSeries("cpu").latest(default=0.1) == 0.1

    def test_rejects_out_of_order_timestamps(self):
        series = MetricSeries("cpu")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 1.0)

    def test_window_selects_half_open_range(self):
        """window is (start, end], matching mean_between."""
        series = MetricSeries("x")
        for t in range(10):
            series.record(float(t), float(t))
        window = series.window(2.0, 5.0)
        assert [v for _, v in window] == [3.0, 4.0, 5.0]
        # A window opened before the first sample includes it.
        assert [v for _, v in series.window(-1.0, 1.0)] == [0.0, 1.0]

    def test_chained_windows_partition_without_double_counting(self):
        """Adjacent windows share a boundary tick without double-counting it,
        and agree with mean_between on exactly which samples they hold."""
        series = MetricSeries("x")
        for t in range(10):
            series.record(float(t), float(t))
        first = series.window(-1.0, 4.0)
        second = series.window(4.0, 9.0)
        chained = [v for _, v in first] + [v for _, v in second]
        assert chained == [float(t) for t in range(10)]
        # The boundary tick t=4 lands in exactly one window.
        assert sum(1 for _, v in first + second if v == 4.0) == 1
        # mean_between sees the same half-open partitions.
        assert series.mean_between(-1.0, 4.0) == pytest.approx(
            sum(v for _, v in first) / len(first)
        )
        assert series.mean_between(4.0, 9.0) == pytest.approx(
            sum(v for _, v in second) / len(second)
        )

    def test_mean_between_boundary_semantics(self):
        """mean_between is (start, end]: excludes start, includes end."""
        series = MetricSeries("x")
        for t in range(5):
            series.record(float(t), float(t))
        assert series.mean_between(1.0, 3.0) == pytest.approx(2.5)  # {2, 3}
        assert series.mean_between(3.0, 3.0) == 0.0  # empty window -> default
        assert series.mean_between(3.0, 2.0, default=-1.0) == -1.0

    def test_mean_and_max_over_last_n(self):
        series = MetricSeries("x")
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            series.record(float(t), v)
        assert series.mean(last_n=2) == pytest.approx(3.5)
        assert series.maximum(last_n=3) == 4.0

    def test_cumulative(self):
        series = MetricSeries("x")
        for t, v in enumerate([1.0, 2.0, 3.0]):
            series.record(float(t), v)
        assert series.cumulative() == [1.0, 3.0, 6.0]

    def test_total(self):
        series = MetricSeries("x")
        series.record(0.0, 2.0)
        series.record(1.0, 3.0)
        assert series.total() == 5.0


class TestMetricsRegistry:
    def test_series_created_on_demand(self):
        registry = MetricsRegistry()
        registry.record("node-1", "cpu", 0.0, 0.4)
        assert registry.latest("node-1", "cpu") == 0.4
        assert registry.entities() == ["node-1"]
        assert registry.metrics_for("node-1") == ["cpu"]

    def test_latest_default_for_unknown(self):
        assert MetricsRegistry().latest("nope", "cpu", default=0.9) == 0.9

    def test_drop_entity(self):
        registry = MetricsRegistry()
        registry.record("node-1", "cpu", 0.0, 0.4)
        registry.record("node-2", "cpu", 0.0, 0.5)
        registry.drop_entity("node-1")
        assert registry.entities() == ["node-2"]


class TestWorkloadBinding:
    def _binding(self, **overrides):
        kwargs = dict(
            name="w",
            threads=10,
            op_mix={"read": 0.5, "update": 0.5},
            region_weights={"r1": 0.6, "r2": 0.4},
        )
        kwargs.update(overrides)
        return WorkloadBinding(**kwargs)

    def test_valid_binding(self):
        binding = self._binding()
        assert binding.regions() == ["r1", "r2"]

    def test_rejects_bad_mix_sum(self):
        with pytest.raises(ValueError):
            self._binding(op_mix={"read": 0.5, "update": 0.4})

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            self._binding(op_mix={"read": 0.5, "fly": 0.5})

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            self._binding(region_weights={"r1": 0.7, "r2": 0.7})

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ValueError):
            self._binding(threads=0)

    def test_max_throughput_decreases_with_latency(self):
        binding = self._binding()
        fast = binding.max_throughput(1.0)
        slow = binding.max_throughput(10.0)
        assert fast > slow > 0

    def test_max_throughput_respects_target_cap(self):
        binding = self._binding(target_ops_per_second=100.0)
        assert binding.max_throughput(0.1) == 100.0

    def test_inactive_binding_offers_nothing(self):
        binding = self._binding(active=False)
        assert binding.max_throughput(1.0) == 0.0

    def test_offered_loads_split_by_weights_and_mix(self):
        binding = self._binding()
        loads = {load.region_id: load for load in binding.offered_loads(1000.0)}
        assert loads["r1"].rate("read") == pytest.approx(300.0)
        assert loads["r2"].total == pytest.approx(400.0)

    def test_mean_latency_uses_default_for_missing_regions(self):
        binding = self._binding()
        latency = binding.mean_latency({"r1": {"read": 1.0, "update": 1.0}})
        # r2 is unavailable and contributes the blocked-request penalty.
        assert latency > 100.0

    def test_single_thread_bounded_by_client_overhead(self):
        binding = self._binding(threads=1)
        assert binding.max_throughput(0.0) <= 1000.0 / CLIENT_OVERHEAD_MS


class TestOfferedLoad:
    def test_total_and_rate(self):
        load = OfferedLoad(region_id="r", rates={"read": 5.0, "scan": 1.0})
        assert load.total == 6.0
        assert load.rate("read") == 5.0
        assert load.rate("update") == 0.0
