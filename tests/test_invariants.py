"""The declared mutator inventory matches the live simulator.

``repro.simulation.invariants`` is the source of truth rule D4 audits
against; these tests pin the other direction -- the declaration cannot
drift away from the class it describes.
"""

import inspect

from repro.simulation import invariants
from repro.simulation.cluster import ClusterSimulator, SimulatedRegion


def test_declared_mutators_are_real_methods():
    for name in sorted(invariants.DECLARED_MUTATORS | invariants.DIRTY_MARKERS):
        member = inspect.getattr_static(ClusterSimulator, name, None)
        assert callable(member), f"inventory names missing method {name!r}"


def test_tick_machinery_is_real():
    for name in sorted(invariants.TICK_MACHINERY):
        assert callable(inspect.getattr_static(ClusterSimulator, name, None)), name


def test_inventory_sets_are_disjoint():
    assert not invariants.DECLARED_MUTATORS & invariants.TICK_MACHINERY
    assert not invariants.DECLARED_MUTATORS & invariants.DIRTY_MARKERS
    assert not invariants.STRUCTURE_MUTATORS & invariants.WORKLOAD_MUTATORS


def test_hooked_region_attributes_are_intercepted():
    hook = SimulatedRegion.__setattr__
    source = inspect.getsource(hook)
    for attr in sorted(invariants.HOOKED_REGION_ATTRIBUTES):
        assert f'"{attr}"' in source or f"'{attr}'" in source, (
            f"SimulatedRegion.__setattr__ no longer special-cases {attr!r}; "
            "update invariants.HOOKED_REGION_ATTRIBUTES and rule D4"
        )


def test_guarded_node_attributes_exist(simulator):
    node = next(iter(simulator.nodes.values()))
    for attr in sorted(invariants.GUARDED_NODE_ATTRIBUTES):
        assert hasattr(node, attr), f"SimulatedNode lost attribute {attr!r}"


def test_guarded_binding_attributes_exist(paper_simulator):
    binding = next(iter(paper_simulator.bindings.values()))
    for attr in sorted(invariants.GUARDED_BINDING_ATTRIBUTES):
        assert hasattr(binding, attr), f"WorkloadBinding lost attribute {attr!r}"


def test_solver_state_containers_exist(simulator):
    for attr in sorted(invariants.SOLVER_STATE_CONTAINERS):
        assert isinstance(getattr(simulator, attr), dict)


def test_region_node_hook_bumps_structure_version(simulator):
    names = sorted(simulator.nodes)
    region = simulator.add_region("r-hook", workload="w", size_bytes=1.0, node=names[0])
    before = simulator._structure_version
    region.node = names[1]
    assert simulator._structure_version > before, (
        "assigning region.node no longer bumps the structure version -- the "
        "hook rule D4 relies on is gone"
    )
    before = simulator._structure_version
    region.block_homes = {names[1]}
    assert simulator._structure_version > before
