#!/usr/bin/env python
"""Benchmark the simulation kernel: fast vs reference (seed) ticks/sec.

Runs the deterministic synthetic scenario at small/medium/large scales with
both kernels and writes ``BENCH_kernel.json`` at the repo root so the perf
trajectory is tracked PR over PR.

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [--scale large] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.simulation.bench import SCALES, run_kernel_benchmark  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        action="append",
        choices=sorted(SCALES),
        help="scale(s) to run (default: all)",
    )
    parser.add_argument(
        "--reference-ticks",
        type=int,
        default=20,
        help="timed ticks for the reference kernel (default: 20)",
    )
    parser.add_argument(
        "--fast-ticks",
        type=int,
        default=100,
        help="timed ticks for the fast kernel (default: 100)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_kernel.json",
        help="where to write the JSON report (default: BENCH_kernel.json)",
    )
    args = parser.parse_args(argv)

    results = run_kernel_benchmark(
        scales=args.scale,
        reference_ticks=args.reference_ticks,
        fast_ticks=args.fast_ticks,
    )

    header = f"{'scale':<8} {'nodes':>5} {'regions':>7} {'tenants':>7} {'ref t/s':>9} {'fast t/s':>9} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.scale:<8} {result.nodes:>5} {result.regions:>7} "
            f"{result.tenants:>7} {result.reference_ticks_per_sec:>9.1f} "
            f"{result.fast_ticks_per_sec:>9.1f} {result.speedup:>7.1f}x"
        )

    report = {
        "benchmark": "simulation-kernel-ticks-per-second",
        "python": platform.python_version(),
        "scales": {result.scale: result.as_dict() for result in results},
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
