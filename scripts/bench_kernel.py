#!/usr/bin/env python
"""Benchmark the simulation kernels: reference vs fast vs event ticks/sec.

Runs the deterministic synthetic scenario at small/medium/large/xlarge
scales and writes ``BENCH_kernel.json`` at the repo root so the perf
trajectory is tracked PR over PR.  The reference and fast kernels are timed
tick-by-tick on the mixed scenario; the event kernel is timed on the
insert-free steady scenario through ``ClusterSimulator.run`` so its
fast-forwarded macro-ticks count (*effective* ticks/sec), alongside the
fraction of ticks it covered without a real solve.

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py [--scale large] [--output PATH]
    PYTHONPATH=src python scripts/bench_kernel.py --smoke   # CI signal: one
        short small-scale run, printed only, no floor and no JSON rewrite
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.simulation.bench import SCALES, run_kernel_benchmark  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        action="append",
        choices=sorted(SCALES),
        help="scale(s) to run (default: all)",
    )
    parser.add_argument(
        "--reference-ticks",
        type=int,
        default=20,
        help="timed ticks for the reference kernel (default: 20)",
    )
    parser.add_argument(
        "--fast-ticks",
        type=int,
        default=100,
        help="timed ticks for the fast kernel (default: 100)",
    )
    parser.add_argument(
        "--event-ticks",
        type=int,
        default=600,
        help="simulated ticks covered by the event kernel run (default: 600)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI mode: small scale only, short runs, print only "
        "(BENCH_kernel.json is left untouched unless --output is given)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the JSON report (default: BENCH_kernel.json; "
        "omitted entirely in --smoke mode)",
    )
    args = parser.parse_args(argv)

    scales = args.scale
    reference_ticks = args.reference_ticks
    fast_ticks = args.fast_ticks
    event_ticks = args.event_ticks
    if args.smoke:
        scales = scales or ["small"]
        reference_ticks = min(reference_ticks, 5)
        fast_ticks = min(fast_ticks, 20)
        event_ticks = min(event_ticks, 120)

    results = run_kernel_benchmark(
        scales=scales,
        reference_ticks=reference_ticks,
        fast_ticks=fast_ticks,
        event_ticks=event_ticks,
    )

    header = (
        f"{'scale':<8} {'nodes':>5} {'regions':>7} {'tenants':>7} "
        f"{'ref t/s':>9} {'fast t/s':>9} {'event t/s':>10} "
        f"{'steady%':>8} {'fast-x':>7} {'event-x':>8}"
    )
    print(header)
    print("-" * len(header))
    for result in results:
        print(
            f"{result.scale:<8} {result.nodes:>5} {result.regions:>7} "
            f"{result.tenants:>7} {result.reference_ticks_per_sec:>9.1f} "
            f"{result.fast_ticks_per_sec:>9.1f} {result.event_ticks_per_sec:>10.1f} "
            f"{100.0 * result.steady_fraction:>7.1f}% "
            f"{result.speedup:>6.1f}x {result.event_speedup:>7.1f}x"
        )

    output = args.output
    if output is None and not args.smoke:
        output = REPO_ROOT / "BENCH_kernel.json"
    if output is not None:
        report = {
            "benchmark": "simulation-kernel-ticks-per-second",
            "python": platform.python_version(),
            "scales": {result.scale: result.as_dict() for result in results},
        }
        output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
