#!/usr/bin/env python3
"""Regenerate the committed golden traces under tests/golden/.

Run after an *intentional* behaviour change (new decision logic, retuned
scenario, trace schema bump):

    PYTHONPATH=src python scripts/regen_goldens.py

then review the diff -- every changed number is a claim that the new
behaviour is the correct one.  The golden test suite will fail loudly until
regenerated goldens are committed alongside the change that moved them.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios import CANNED_SCENARIOS, scenario_trace, trace_to_json  # noqa: E402
from repro.scenarios.trace import GOLDEN_CONTROLLERS, golden_name  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"


def main() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, spec in sorted(CANNED_SCENARIOS.items()):
        for controller in GOLDEN_CONTROLLERS:
            path = GOLDEN_DIR / golden_name(name, controller)
            payload = trace_to_json(scenario_trace(spec, controller, kernel="fast"))
            changed = not path.exists() or path.read_text() != payload
            path.write_text(payload)
            print(f"{'updated ' if changed else 'unchanged'} {path.relative_to(REPO_ROOT)}")


if __name__ == "__main__":
    main()
