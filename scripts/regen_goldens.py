#!/usr/bin/env python3
"""Regenerate (or verify) the committed golden traces under tests/golden/.

Run after an *intentional* behaviour change (new decision logic, retuned
scenario, trace schema bump):

    PYTHONPATH=src python scripts/regen_goldens.py

then review the diff -- every changed number is a claim that the new
behaviour is the correct one.  The golden test suite will fail loudly until
regenerated goldens are committed alongside the change that moved them.

CI runs the drift gate:

    PYTHONPATH=src python scripts/regen_goldens.py --check

which regenerates every trace in memory and exits non-zero if any committed
golden differs (or is missing, or is stale -- a file no scenario produces).
Value drift and *schema-format* staleness are reported distinctly: a golden
still carrying an older TRACE_FORMAT needs a regen commit, not a hunt
through hundreds of spurious value diffs.  ``--diff-report PATH`` writes a
unified diff of every out-of-sync golden (CI uploads it as a workflow
artifact so the drift is reviewable without reproducing the run).
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios import CANNED_SCENARIOS, scenario_trace, trace_to_json  # noqa: E402
from repro.scenarios.trace import (  # noqa: E402
    TRACE_FORMAT,
    golden_combos,
    golden_name,
)

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"


def expected_payloads() -> dict[Path, str]:
    """Canonical serialisation of every (scenario, controller) golden.

    The combo list is the catalog x GOLDEN_CONTROLLERS matrix plus the
    planner-goldened subset (see ``trace.golden_combos``).
    """
    # Goldens run the scenario runner's default kernel (the event kernel
    # since the catalog-wide soak proved it byte-identical to "fast").
    return {
        GOLDEN_DIR / golden_name(scenario, controller): trace_to_json(
            scenario_trace(CANNED_SCENARIOS[scenario], controller)
        )
        for scenario, controller in golden_combos()
    }


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for path, payload in expected_payloads().items():
        changed = not path.exists() or path.read_text() != payload
        path.write_text(payload)
        print(f"{'updated ' if changed else 'unchanged'} {path.relative_to(REPO_ROOT)}")


def _display(path: Path) -> Path:
    """Repo-relative rendering of a golden path (as-is when outside the repo)."""
    try:
        return path.relative_to(REPO_ROOT)
    except ValueError:
        return path


#: Sentinel for committed goldens that do not parse as JSON at all.
_UNPARSEABLE = object()


def _committed_format(text: str) -> object:
    """The ``format`` field of a committed golden.

    ``None`` means the file parses but carries no format tag (a pre-format
    schema, handled as stale); :data:`_UNPARSEABLE` means the JSON itself is
    damaged (truncated write, conflict markers).
    """
    try:
        return json.loads(text).get("format")
    except (json.JSONDecodeError, AttributeError):
        return _UNPARSEABLE


def check(diff_report: Path | None = None) -> int:
    expected = expected_payloads()
    problems: list[str] = []
    diffs: list[str] = []
    for path, payload in expected.items():
        name = _display(path)
        if not path.exists():
            problems.append(f"missing       {name}")
            continue
        committed = path.read_text()
        if committed == payload:
            continue
        committed_format = _committed_format(committed)
        if committed_format is _UNPARSEABLE:
            # Damaged JSON (truncated write, conflict markers) is not a
            # schema-version problem: label it as such and keep the full
            # diff so the damage is visible in the report.
            problems.append(f"unparseable   {name}")
        elif committed_format != TRACE_FORMAT:
            # Schema staleness, reported distinctly from value drift: the
            # file predates a trace-format bump and *must* be regenerated;
            # diffing its values against the new schema is noise, so the
            # report gets a one-line marker instead of a unified diff.
            problems.append(
                f"stale-format  {name} (format {committed_format!r}, "
                f"expected {TRACE_FORMAT})"
            )
            diffs.append(
                f"# {name}: stale trace format {committed_format!r} "
                f"(expected {TRACE_FORMAT}); value diff suppressed\n"
            )
            continue
        else:
            problems.append(f"drifted       {name}")
        diffs.append(
            "".join(
                difflib.unified_diff(
                    committed.splitlines(keepends=True),
                    payload.splitlines(keepends=True),
                    fromfile=f"committed/{name}",
                    tofile=f"expected/{name}",
                )
            )
        )
    committed_files = set(GOLDEN_DIR.glob("*.json")) if GOLDEN_DIR.exists() else set()
    for orphan in sorted(committed_files - set(expected)):
        problems.append(f"orphaned      {_display(orphan)}")
    if diff_report is not None:
        diff_report.write_text("".join(diffs))
        if diffs:
            print(f"wrote drift diff to {diff_report}")
    if problems:
        print("golden traces out of sync with the catalog:")
        for problem in problems:
            print(f"  {problem}")
        print(
            "regenerate with `PYTHONPATH=src python scripts/regen_goldens.py` "
            "and commit the diff"
        )
        return 1
    print(f"all {len(expected)} goldens in sync")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify committed goldens instead of rewriting them",
    )
    parser.add_argument(
        "--diff-report",
        type=Path,
        default=None,
        metavar="PATH",
        help="with --check: write a unified diff of out-of-sync goldens to PATH",
    )
    args = parser.parse_args()
    if args.check:
        raise SystemExit(check(diff_report=args.diff_report))
    regenerate()


if __name__ == "__main__":
    main()
