#!/usr/bin/env python3
"""Regenerate (or verify) the committed golden traces under tests/golden/.

Run after an *intentional* behaviour change (new decision logic, retuned
scenario, trace schema bump):

    PYTHONPATH=src python scripts/regen_goldens.py

then review the diff -- every changed number is a claim that the new
behaviour is the correct one.  The golden test suite will fail loudly until
regenerated goldens are committed alongside the change that moved them.

CI runs the drift gate:

    PYTHONPATH=src python scripts/regen_goldens.py --check

which regenerates every trace in memory and exits non-zero if any committed
golden differs (or is missing, or is stale -- a file no scenario produces),
so goldens cannot drift without an explicit regen commit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios import CANNED_SCENARIOS, scenario_trace, trace_to_json  # noqa: E402
from repro.scenarios.trace import GOLDEN_CONTROLLERS, golden_name  # noqa: E402

GOLDEN_DIR = REPO_ROOT / "tests" / "golden"


def expected_payloads() -> dict[Path, str]:
    """Canonical serialisation of every (scenario, controller) golden."""
    return {
        GOLDEN_DIR / golden_name(name, controller): trace_to_json(
            scenario_trace(spec, controller, kernel="fast")
        )
        for name, spec in sorted(CANNED_SCENARIOS.items())
        for controller in GOLDEN_CONTROLLERS
    }


def regenerate() -> None:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for path, payload in expected_payloads().items():
        changed = not path.exists() or path.read_text() != payload
        path.write_text(payload)
        print(f"{'updated ' if changed else 'unchanged'} {path.relative_to(REPO_ROOT)}")


def check() -> int:
    expected = expected_payloads()
    problems: list[str] = []
    for path, payload in expected.items():
        name = path.relative_to(REPO_ROOT)
        if not path.exists():
            problems.append(f"missing   {name}")
        elif path.read_text() != payload:
            problems.append(f"drifted   {name}")
    committed = set(GOLDEN_DIR.glob("*.json")) if GOLDEN_DIR.exists() else set()
    for stale in sorted(committed - set(expected)):
        problems.append(f"stale     {stale.relative_to(REPO_ROOT)}")
    if problems:
        print("golden traces out of sync with the catalog:")
        for problem in problems:
            print(f"  {problem}")
        print(
            "regenerate with `PYTHONPATH=src python scripts/regen_goldens.py` "
            "and commit the diff"
        )
        return 1
    print(f"all {len(expected)} goldens in sync")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify committed goldens instead of rewriting them",
    )
    args = parser.parse_args()
    if args.check:
        raise SystemExit(check())
    regenerate()


if __name__ == "__main__":
    main()
