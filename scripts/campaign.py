#!/usr/bin/env python
"""Run a controller x scenario x scale x seed campaign from the command line.

The default invocation sweeps the whole canned catalog under both
controllers at three seeds, fanning out over a process pool, appending one
JSON line per completed run to the results store, and printing the
aggregated MeT-vs-Tiramola comparison table:

    PYTHONPATH=src python scripts/campaign.py --workers 4

The store is resumable: re-running the same command skips every completed
cell, so an interrupted campaign finishes from where it stopped.  Useful
modes::

    --smoke            tiny 2x3x1 grid on 2 workers (the CI signal; all
                       three controllers incl. the planner); prints the
                       table and exits non-zero on any failed assertion
    --bench            times the grid serially and on the pool into throwaway
                       stores and writes BENCH_campaign.json at the repo root
    --scales 1.0,1.5   adds scale points (load multipliers) to the grid
    --plot PATH        quality-vs-cost scatter (skipped if matplotlib absent)
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import (  # noqa: E402
    BASELINE_SCALE,
    CampaignGrid,
    ResultsStore,
    ScaleSpec,
    plot_campaign,
    render_campaign_table,
    render_seed_quantile_table,
    run_campaign,
    write_campaign_bench,
)
from repro.scenarios import CANNED_SCENARIOS  # noqa: E402
from repro.scenarios.runner import DEFAULT_KERNEL  # noqa: E402
from repro.util.wallclock import wall_perf_counter  # noqa: E402

SMOKE_SCENARIOS = ("diurnal", "flash_crowd")
# Smoke exercises every controller the scorecard compares, not just the
# paper's pair: a planner regression should fail CI's cheapest signal.
SMOKE_CONTROLLERS = "met,tiramola,planner"


def parse_scales(raw: str, tenant_copies: int) -> tuple[ScaleSpec, ...]:
    scales = []
    for part in raw.split(","):
        load = float(part)
        name = f"{load:g}x"
        scales.append(ScaleSpec(name=name, load=load, tenant_copies=tenant_copies))
    return tuple(scales)


def build_grid(args: argparse.Namespace) -> CampaignGrid:
    names = args.scenarios or sorted(CANNED_SCENARIOS)
    unknown = [name for name in names if name not in CANNED_SCENARIOS]
    if unknown:
        raise SystemExit(
            f"unknown scenarios: {', '.join(unknown)} "
            f"(available: {', '.join(sorted(CANNED_SCENARIOS))})"
        )
    if args.scales:
        scales = parse_scales(args.scales, args.tenant_copies)
    elif args.tenant_copies != 1:
        scales = (
            ScaleSpec(
                name=f"1x*{args.tenant_copies}",
                tenant_copies=args.tenant_copies,
            ),
        )
    else:
        scales = (BASELINE_SCALE,)
    return CampaignGrid(
        scenarios=tuple(CANNED_SCENARIOS[name] for name in names),
        controllers=tuple(args.controllers.split(",")),
        scales=scales,
        seeds=args.seeds,
        master_seed=args.master_seed,
    )


def print_progress(done: int, total: int, cell_id: str) -> None:
    print(f"[{done:4d}/{total}] {cell_id}", flush=True)


def run_bench(grid: CampaignGrid, args: argparse.Namespace) -> int:
    """Time the same grid serially and on the pool; write BENCH_campaign.json."""
    with tempfile.TemporaryDirectory(prefix="campaign-bench-") as tmp:
        # Profiling sidecars stay on for both passes: the byte-identity check
        # below then doubles as a regression test that wall-clock profiling
        # never leaks into the deterministic store.
        serial_store = ResultsStore(Path(tmp) / "serial.jsonl")
        start = wall_perf_counter()
        run_campaign(
            grid, serial_store, workers=1, kernel=args.kernel,
            profile_path=Path(tmp) / "serial.profile.jsonl",
        )
        serial_seconds = wall_perf_counter() - start

        pool_store = ResultsStore(Path(tmp) / "pool.jsonl")
        start = wall_perf_counter()
        run_campaign(
            grid, pool_store, workers=args.workers, kernel=args.kernel,
            profile_path=Path(tmp) / "pool.profile.jsonl",
        )
        pool_seconds = wall_perf_counter() - start

        if serial_store.path.read_bytes() != pool_store.path.read_bytes():
            print("FAIL: serial and pooled stores differ byte for byte")
            return 1
    report = write_campaign_bench(
        args.bench_output,
        grid_size=grid.size,
        workers=args.workers,
        serial_seconds=serial_seconds,
        pool_seconds=pool_seconds,
    )
    print(
        f"{grid.size} runs: serial {serial_seconds:.2f}s "
        f"({report['serial_runs_per_second']} runs/s), "
        f"{args.workers} workers {pool_seconds:.2f}s "
        f"({report['pool_runs_per_second']} runs/s), "
        f"speedup {report['pool_speedup']}x -> {args.bench_output}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        help="scenario names to sweep (default: the whole canned catalog)",
    )
    parser.add_argument(
        "--controllers",
        default="met,tiramola",
        help="comma-separated controllers (default: met,tiramola)",
    )
    parser.add_argument("--seeds", type=int, default=3, help="seeds per cell (default: 3)")
    parser.add_argument("--master-seed", type=int, default=0)
    parser.add_argument(
        "--scales",
        default=None,
        help="comma-separated load multipliers, e.g. 1.0,1.5,2.0 (default: baseline only)",
    )
    parser.add_argument(
        "--tenant-copies",
        type=int,
        default=1,
        help="clone each tenant N times per scale (default: 1)",
    )
    parser.add_argument("--workers", type=int, default=4, help="pool size (default: 4)")
    parser.add_argument(
        "--store",
        type=Path,
        default=Path("campaign_results.jsonl"),
        help="append-only results store (default: campaign_results.jsonl)",
    )
    parser.add_argument("--kernel", default=DEFAULT_KERNEL, choices=["event", "fast", "reference"])
    parser.add_argument(
        "--table-out",
        type=Path,
        default=None,
        help="also write the aggregated comparison table to this file",
    )
    parser.add_argument(
        "--plot",
        type=Path,
        default=None,
        help="write a quality-vs-cost scatter plot (needs matplotlib)",
    )
    parser.add_argument(
        "--bench",
        action="store_true",
        help="time the grid serial vs pooled into throwaway stores and "
        "write BENCH_campaign.json (the store flag is ignored)",
    )
    parser.add_argument(
        "--bench-output",
        type=Path,
        default=REPO_ROOT / "BENCH_campaign.json",
        help="where --bench writes its report",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="append per-cell wall-clock to a <store>.profile.jsonl sidecar "
        "(kept outside the byte-deterministic store)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: 2 scenarios x 3 controllers x 1 seed on 2 workers, "
        "temp store, fails on any failed scenario assertion",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        args.scenarios = args.scenarios or list(SMOKE_SCENARIOS)
        if args.controllers == parser.get_default("controllers"):
            args.controllers = SMOKE_CONTROLLERS
        args.seeds = 1
        args.workers = min(args.workers, 2)

    grid = build_grid(args)
    if args.bench:
        return run_bench(grid, args)

    if args.smoke:
        with tempfile.TemporaryDirectory(prefix="campaign-smoke-") as tmp:
            store = ResultsStore(Path(tmp) / "smoke.jsonl")
            report = run_campaign(
                grid, store, workers=args.workers, kernel=args.kernel,
                progress=print_progress,
                profile_path=Path(tmp) / "smoke.profile.jsonl" if args.profile else None,
            )
            records = store.load()
            table = render_campaign_table(records)
    else:
        store = ResultsStore(args.store)
        profile_path = (
            args.store.with_suffix(".profile.jsonl") if args.profile else None
        )
        report = run_campaign(
            grid, store, workers=args.workers, kernel=args.kernel,
            progress=print_progress,
            profile_path=profile_path,
        )
        records = store.load()
        table = render_campaign_table(records)
        if profile_path is not None:
            print(f"profile -> {profile_path}")

    print(
        f"\ncampaign: {report.total} cells, {report.skipped} resumed, "
        f"{len(report.executed)} executed"
    )
    print(table)
    if args.seeds > 1:
        print()
        print(render_seed_quantile_table(records, metric="p99_ms"))
    if args.table_out is not None:
        args.table_out.write_text(table + "\n")
        print(f"table -> {args.table_out}")
    if args.plot is not None:
        if plot_campaign(records, args.plot):
            print(f"plot -> {args.plot}")
        else:
            print("plot skipped: matplotlib not available")
    if args.smoke and not all(record["assertions_passed"] for record in records):
        print("FAIL: some scenario assertions failed")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
