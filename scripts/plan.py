#!/usr/bin/env python3
"""Size a cluster for a target rate and SLO, and price the options.

Answers the capacity question the controllers answer reactively, but ahead
of time: "what does it take to serve N ops/s (or tpmC) under a p99
ceiling, and what does each option cost per month?"  The engine is the
planner package's calibration model -- by default the baked catalog probe
sweep, optionally refitted from a campaign results store::

    PYTHONPATH=src python scripts/plan.py --target 120000 --unit ops/s \\
        --p99 40 --monthly

    PYTHONPATH=src python scripts/plan.py --target 5000 --unit tpmC --p99 25

    PYTHONPATH=src python scripts/plan.py --store campaign_results.jsonl \\
        --target 80000 --p99 30

Maintenance modes::

    --recalibrate      re-run the seeded probe sweep and print the fitted
                       model as Python source (paste into
                       src/repro/planner/calibration.py when retuning the
                       baked DEFAULT_CALIBRATION)
    --smoke            CI mode: plan a fixed sizing question against the
                       baked model and fail unless a feasible option exists
                       and the plan round-trips through JSON byte-identically
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import ResultsStore  # noqa: E402
from repro.planner import (  # noqa: E402
    DEFAULT_CALIBRATION,
    CalibrationModel,
    fit_calibration,
    plan_capacity,
    probe_records,
)
from repro.sla import OPS_PER_SECOND, TPMC  # noqa: E402

#: CLI spellings of the rate units (argparse choices want exact strings).
UNIT_ALIASES = {"ops/s": OPS_PER_SECOND, "tpmC": TPMC, "tpmc": TPMC}


def load_model(args: argparse.Namespace) -> CalibrationModel:
    if args.store is not None:
        store = ResultsStore(args.store)
        records = store.load()
        if not records:
            raise SystemExit(f"results store {args.store} is empty")
        return fit_calibration(records, name=f"store:{args.store.name}")
    return DEFAULT_CALIBRATION


def recalibrate() -> int:
    """Re-run the probe sweep and print the fitted model as Python source."""
    model = fit_calibration(probe_records(), name="catalog-probe-v1")
    print("# Paste over DEFAULT_CALIBRATION in src/repro/planner/calibration.py")
    print("DEFAULT_CALIBRATION = CalibrationModel(")
    print(f"    name={model.name!r},")
    print(f"    base_flavor={model.base_flavor!r},")
    print(f"    base_vcpus={model.base_vcpus},")
    print("    curve=(")
    for point in model.curve:
        print(
            f"        CalibrationPoint(per_node_rate={point.per_node_rate!r}, "
            f"p95_ms={point.p95_ms!r}, p99_ms={point.p99_ms!r}),"
        )
    print("    ),")
    print(")")
    print(f"# fingerprint: {model.fingerprint()}", file=sys.stderr)
    return 0


def smoke() -> int:
    """CI signal: the baked model sizes a canonical question deterministically."""
    plan = plan_capacity(
        DEFAULT_CALIBRATION, target_rate=12_000.0, p99_ceiling_ms=4.0
    )
    best = plan.best()
    if best is None:
        print("FAIL: no feasible option for 12000 ops/s under a 4ms p99")
        return 1
    replay = plan_capacity(
        DEFAULT_CALIBRATION, target_rate=12_000.0, p99_ceiling_ms=4.0
    )
    if plan.to_json() != replay.to_json():
        print("FAIL: identical inputs produced different plans")
        return 1
    print(plan.render(monthly=True, limit=5))
    print(
        f"smoke ok: best={best.flavor}:{best.tier}@{best.region} "
        f"x{best.nodes} (model {plan.model_fingerprint[:12]})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--target", type=float, default=None, help="target rate in --unit units"
    )
    parser.add_argument(
        "--unit",
        default="ops/s",
        choices=sorted(UNIT_ALIASES),
        help="rate unit of --target (default: ops/s)",
    )
    parser.add_argument(
        "--p95", type=float, default=None, metavar="MS", help="p95 ceiling in ms"
    )
    parser.add_argument(
        "--p99", type=float, default=None, metavar="MS", help="p99 ceiling in ms"
    )
    parser.add_argument(
        "--headroom",
        type=float,
        default=0.15,
        help="capacity reserve above target, 0 <= h < 1 (default: 0.15)",
    )
    parser.add_argument(
        "--monthly",
        action="store_true",
        help="include the monthly cost column (720h month)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="show only the N cheapest options",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help="fit the model from this campaign results store "
        "instead of the baked catalog calibration",
    )
    parser.add_argument(
        "--recalibrate",
        action="store_true",
        help="re-run the probe sweep and print the fitted model as source",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI mode: fixed deterministic sizing check"
    )
    args = parser.parse_args(argv)

    if args.recalibrate:
        return recalibrate()
    if args.smoke:
        return smoke()
    if args.target is None:
        parser.error("--target is required (unless --recalibrate or --smoke)")
    if args.p95 is None and args.p99 is None:
        parser.error("need at least one latency ceiling: --p95 and/or --p99")

    model = load_model(args)
    unit = UNIT_ALIASES[args.unit]
    plan = plan_capacity(
        model,
        target_rate=args.target,
        unit=unit,
        p95_ceiling_ms=args.p95,
        p99_ceiling_ms=args.p99,
        headroom=args.headroom,
    )
    ceilings = ", ".join(
        f"p{p} <= {v:g}ms" for p, v in (("95", args.p95), ("99", args.p99)) if v
    )
    print(
        f"plan: {args.target:g} {unit} ({ceilings}, "
        f"{args.headroom:.0%} headroom) via model {model.name} "
        f"[{plan.model_fingerprint[:12]}]"
    )
    print(plan.render(monthly=args.monthly, limit=args.limit))
    best = plan.best()
    if best is None:
        print("no feasible option within the node ceiling")
        return 1
    print(
        f"cheapest fit: {best.nodes}x {best.flavor} ({best.tier}, {best.region}) "
        f"at {best.utilization:.0%} utilization -- "
        f"{best.hourly_cost:.4f}/h, {best.monthly_cost:.2f}/month"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
