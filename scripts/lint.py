#!/usr/bin/env python
"""Run the determinism lint from the repo root (see README "Static analysis").

Thin wrapper over ``python -m repro.analysis`` that pins the repository
root, so it works from any working directory and without PYTHONPATH::

    python scripts/lint.py --check            # the CI gate
    python scripts/lint.py src/repro/foo.py   # one file while iterating
    python scripts/lint.py --update-baseline  # burn the baseline down
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.__main__ import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main(root=REPO_ROOT))
